// Cholesky factorization and SPD solves. The ALS matrix-completion solver
// calls SolveSpd once per factor row per sweep with tiny (r x r) systems.
#ifndef COMFEDSV_LINALG_CHOLESKY_H_
#define COMFEDSV_LINALG_CHOLESKY_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Computes the lower-triangular Cholesky factor L with A = L L^T.
/// Fails with kNumericalError if A is not (numerically) positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Allocation-free SPD solve for the tiny per-row ALS systems: `a`
/// (n x n, row-major) is overwritten with scratch, `b` (length n) with
/// the solution. Runs the same factor / forward / back sweeps as
/// SolveSpd but with each pivot divided once and reused as a reciprocal
/// multiply (the serial divisions dominate the latency of tiny solves),
/// so solutions agree with SolveSpd to the last ulp rather than bit for
/// bit. Deterministic. Returns false if `a` is not (numerically)
/// positive definite.
bool SolveSpdInPlace(int n, double* a, double* b);

/// Solves L y = b (forward substitution) for lower-triangular L.
Vector ForwardSubstitute(const Matrix& lower, const Vector& b);

/// Solves L^T x = y (back substitution) given lower-triangular L.
Vector BackSubstituteTranspose(const Matrix& lower, const Vector& y);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_CHOLESKY_H_
