// Empirical epsilon-rank (Definition 3 of the paper): the smallest k such
// that some rank-k matrix Z has ||Z - X||_max <= eps.
//
// Computing the exact eps-rank is intractable; we report the standard
// SVD-truncation upper bound: the smallest k whose truncated-SVD
// approximation already achieves max-entry error <= eps. Propositions 1
// and 2 are *upper* bounds on rank_eps, so comparing them against another
// upper bound that is itself achieved by a concrete rank-k matrix keeps
// the check sound: measured(k) <= exact rank_eps bound is not guaranteed,
// but measured(k) <= paper bound is the meaningful direction and is what
// the ablation bench verifies.
#ifndef COMFEDSV_LINALG_EPS_RANK_H_
#define COMFEDSV_LINALG_EPS_RANK_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace comfedsv {

/// Smallest k such that the rank-k truncated SVD of `a` has max-entry
/// error <= eps. Returns min(rows, cols) if no truncation qualifies.
Result<int> EpsRankUpperBound(const Matrix& a, double eps);

/// Spectral shortcut: smallest k with sigma_{k+1} <= eps. Because
/// ||A - A_k||_max <= ||A - A_k||_2 = sigma_{k+1}, this also upper-bounds
/// the eps-rank and is much cheaper (no reconstruction).
Result<int> EpsRankSpectralBound(const Matrix& a, double eps);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_EPS_RANK_H_
