#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

double Vector::at(size_t i) const {
  COMFEDSV_CHECK_LT(i, data_.size());
  return data_[i];
}

void Vector::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Vector::Axpy(double alpha, const Vector& x) {
  COMFEDSV_CHECK_EQ(size(), x.size());
  const double* xp = x.data();
  double* yp = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void Vector::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double Vector::Dot(const Vector& other) const {
  COMFEDSV_CHECK_EQ(size(), other.size());
  double acc = 0.0;
  const double* a = data();
  const double* b = other.data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double Vector::Norm2() const { return std::sqrt(Dot(*this)); }

double Vector::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Vector::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

Vector Vector::operator+(const Vector& other) const {
  Vector out = *this;
  out += other;
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  Vector out = *this;
  out -= other;
  return out;
}

Vector Vector::operator*(double alpha) const {
  Vector out = *this;
  out *= alpha;
  return out;
}

Vector& Vector::operator+=(const Vector& other) {
  Axpy(1.0, other);
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  Axpy(-1.0, other);
  return *this;
}

Vector& Vector::operator*=(double alpha) {
  Scale(alpha);
  return *this;
}

double Distance(const Vector& a, const Vector& b) {
  COMFEDSV_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Vector Mean(const std::vector<const Vector*>& vectors) {
  COMFEDSV_CHECK(!vectors.empty());
  Vector out(vectors[0]->size());
  for (const Vector* v : vectors) {
    COMFEDSV_CHECK(v != nullptr);
    out.Axpy(1.0, *v);
  }
  out.Scale(1.0 / static_cast<double>(vectors.size()));
  return out;
}

}  // namespace comfedsv
