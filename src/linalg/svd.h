// Singular value decomposition via the Gram-matrix eigendecomposition of
// the smaller side. The utility matrices analysed in the paper (Fig. 2)
// are T x 2^N with T << 2^N, so the Gram matrix is only T x T.
#ifndef COMFEDSV_LINALG_SVD_H_
#define COMFEDSV_LINALG_SVD_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Thin SVD A = U diag(s) V^T with k = min(rows, cols) components.
struct SvdDecomposition {
  Matrix u;        ///< rows x k, orthonormal columns.
  Vector singular; ///< k singular values, descending, non-negative.
  Matrix v;        ///< cols x k, orthonormal columns.
};

/// Singular values of `a` in descending order (length min(rows, cols)).
Result<Vector> SingularValues(const Matrix& a);

/// Thin SVD of `a`. Singular vectors for (numerically) zero singular
/// values are zero columns.
Result<SvdDecomposition> ThinSvd(const Matrix& a);

/// Best rank-k approximation of `a` by truncated SVD.
Result<Matrix> TruncatedSvdApproximation(const Matrix& a, int rank);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_SVD_H_
