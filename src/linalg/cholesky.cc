#include "linalg/cholesky.h"

#include <cmath>

#include "common/check.h"

namespace comfedsv {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError("matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return l;
}

Vector ForwardSubstitute(const Matrix& lower, const Vector& b) {
  COMFEDSV_CHECK_EQ(lower.rows(), b.size());
  const size_t n = b.size();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= lower(i, k) * y[k];
    y[i] = acc / lower(i, i);
  }
  return y;
}

Vector BackSubstituteTranspose(const Matrix& lower, const Vector& y) {
  COMFEDSV_CHECK_EQ(lower.rows(), y.size());
  const size_t n = y.size();
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= lower(k, i) * x[k];
    x[i] = acc / lower(i, i);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in SolveSpd");
  }
  Result<Matrix> factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  Vector y = ForwardSubstitute(factor.value(), b);
  return BackSubstituteTranspose(factor.value(), y);
}

}  // namespace comfedsv
