#include "linalg/cholesky.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace comfedsv {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError("matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return l;
}

Vector ForwardSubstitute(const Matrix& lower, const Vector& b) {
  COMFEDSV_CHECK_EQ(lower.rows(), b.size());
  const size_t n = b.size();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= lower(i, k) * y[k];
    y[i] = acc / lower(i, i);
  }
  return y;
}

Vector BackSubstituteTranspose(const Matrix& lower, const Vector& y) {
  COMFEDSV_CHECK_EQ(lower.rows(), y.size());
  const size_t n = y.size();
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= lower(k, i) * x[k];
    x[i] = acc / lower(i, i);
  }
  return x;
}

bool SolveSpdInPlace(int n, double* a, double* b) {
  // Factor in place: the lower triangle of `a` becomes L (the strict
  // upper triangle is left stale scratch). Same sweep order as
  // CholeskyFactor / ForwardSubstitute / BackSubstituteTranspose, but
  // each pivot's reciprocal is computed once and reused as a multiply:
  // for the tiny systems the ALS inner loop solves, the ~4n serial
  // divisions of the plain sweeps are its dominant latency. Results
  // differ from SolveSpd only at the last-ulp level of x * (1/d) vs
  // x / d, and stay deterministic.
  constexpr int kStackDim = 32;
  double inv_stack[kStackDim];
  std::vector<double> inv_heap;
  double* inv = inv_stack;
  if (n > kStackDim) {
    inv_heap.resize(n);
    inv = inv_heap.data();
  }
  for (int j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (int k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    inv[j] = 1.0 / ljj;
    for (int i = j + 1; i < n; ++i) {
      double acc = a[i * n + j];
      for (int k = 0; k < j; ++k) acc -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = acc * inv[j];
    }
  }
  // Forward substitution L y = b, overwriting b with y.
  for (int i = 0; i < n; ++i) {
    double acc = b[i];
    for (int k = 0; k < i; ++k) acc -= a[i * n + k] * b[k];
    b[i] = acc * inv[i];
  }
  // Back substitution L^T x = y, overwriting b with x.
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int k = i + 1; k < n; ++k) acc -= a[k * n + i] * b[k];
    b[i] = acc * inv[i];
  }
  return true;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in SolveSpd");
  }
  Result<Matrix> factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  Vector y = ForwardSubstitute(factor.value(), b);
  return BackSubstituteTranspose(factor.value(), y);
}

}  // namespace comfedsv
