// Symmetric eigendecomposition via the cyclic Jacobi method. The SVD
// (linalg/svd.h) reduces to this on the Gram matrix of the smaller side.
#ifndef COMFEDSV_LINALG_EIGEN_H_
#define COMFEDSV_LINALG_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

/// Eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  Vector values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Decomposes a symmetric matrix with the cyclic Jacobi method.
/// Fails with kInvalidArgument if `a` is not square or not symmetric to
/// within `symmetry_tol` (relative to its max entry).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          double symmetry_tol = 1e-8,
                                          int max_sweeps = 64);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_EIGEN_H_
