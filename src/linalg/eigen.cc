#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace comfedsv {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          double symmetry_tol,
                                          int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = a.rows();
  const double scale = std::max(a.MaxAbs(), 1e-300);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > symmetry_tol * scale) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&] {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) acc += work(i, j) * work(i, j);
    }
    return std::sqrt(2.0 * acc);
  };

  const double tol = 1e-14 * std::max(1.0, work.FrobeniusNorm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable Jacobi rotation (Golub & Van Loan 8.4).
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Update rows/cols p and q of `work`.
        for (size_t k = 0; k < n; ++k) {
          const double akp = work(k, p);
          const double akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = work(p, k);
          const double aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        // Accumulate rotations into the eigenvector matrix.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return work(x, x) > work(y, y);
  });

  EigenDecomposition out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.values[j] = work(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace comfedsv
