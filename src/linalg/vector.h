// Dense double-precision vector.
//
// Models expose their parameters as flat Vectors so that FedAvg
// aggregation, coalition averaging, and the matrix-completion factors all
// run through the same handful of BLAS-1 kernels.
#ifndef COMFEDSV_LINALG_VECTOR_H_
#define COMFEDSV_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace comfedsv {

/// A dense vector of doubles with the BLAS-1 operations the library needs.
class Vector {
 public:
  Vector() = default;

  /// A vector of `n` zeros.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// A vector of `n` copies of `value`.
  Vector(size_t n, double value) : data_(n, value) {}

  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  /// Bounds-checked access (fatal on violation).
  double at(size_t i) const;

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Resizes, zero-filling any new entries.
  void Resize(size_t n) { data_.resize(n, 0.0); }

  /// this += alpha * x. Sizes must match.
  void Axpy(double alpha, const Vector& x);

  /// this *= alpha.
  void Scale(double alpha);

  /// Dot product. Sizes must match.
  double Dot(const Vector& other) const;

  /// Euclidean norm.
  double Norm2() const;

  /// Largest absolute entry (0 for an empty vector).
  double MaxAbs() const;

  /// Sum of entries.
  double Sum() const;

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double alpha) const;
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double alpha);

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  std::vector<double> data_;
};

/// Euclidean distance ||a - b||.
double Distance(const Vector& a, const Vector& b);

/// Entry-wise mean of `vectors` (all the same size; the list is non-empty).
Vector Mean(const std::vector<const Vector*>& vectors);

}  // namespace comfedsv

#endif  // COMFEDSV_LINALG_VECTOR_H_
