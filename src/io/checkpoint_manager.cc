#include "io/checkpoint_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "io/file_env.h"

namespace comfedsv {
namespace {

constexpr int kSequenceDigits = 8;

/// Parses the `<digits>` of a `<base>.<digits>` generation file name.
/// Returns false for anything else (the bare file, `.tmp`, `.corrupt`).
bool ParseGenerationSuffix(const std::string& name, const std::string& base,
                           uint64_t* sequence) {
  if (name.size() <= base.size() + 1 || name.compare(0, base.size(), base) ||
      name[base.size()] != '.') {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = base.size() + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  *sequence = seq;
  return true;
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string BaseOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Only DataLoss (corrupt bytes) quarantines and falls back to an older
// generation. FailedPrecondition (version skew, fingerprint mismatch)
// and InvalidArgument (wrong root tag) mean the file is intact but
// belongs to a different run or build — propagating preserves the "no
// silent restart under the wrong inputs" contract, and the file itself
// is evidence worth keeping in place.
bool IsSalvageCode(StatusCode code) {
  return code == StatusCode::kDataLoss;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string path,
                                     CheckpointManagerOptions options)
    : path_(std::move(path)), options_(std::move(options)) {
  COMFEDSV_CHECK_GT(options_.keep_generations, 0);
  COMFEDSV_CHECK_GE(options_.max_retries, 0);
  env_ = options_.env != nullptr ? options_.env : FileEnv::Real();
  if (!options_.sleeper) {
    options_.sleeper = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

std::string CheckpointManager::GenerationPath(uint64_t sequence) const {
  std::ostringstream out;
  out << path_ << '.' << std::setw(kSequenceDigits) << std::setfill('0')
      << sequence;
  return out.str();
}

std::vector<std::pair<uint64_t, std::string>>
CheckpointManager::ListGenerations() const {
  if (!rotated()) {
    std::vector<std::pair<uint64_t, std::string>> generations;
    if (env_->Exists(path_)) generations.emplace_back(0, path_);
    return generations;
  }
  return ListRotatedGenerations();
}

std::vector<std::pair<uint64_t, std::string>>
CheckpointManager::ListRotatedGenerations() const {
  std::vector<std::pair<uint64_t, std::string>> generations;
  const std::string dir = DirOf(path_);
  const std::string base = BaseOf(path_);
  auto entries = env_->ListDir(dir);
  if (!entries.ok()) return generations;
  for (const std::string& name : entries.value()) {
    uint64_t seq = 0;
    if (ParseGenerationSuffix(name, base, &seq)) {
      generations.emplace_back(seq, dir + "/" + name);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

uint64_t CheckpointManager::PeekSequence(const std::string& file) const {
  // Header layout (serialize.cc): magic u32, version u32, root tag u32,
  // payload length u64, sequence u64, checksum u64 — 36 bytes.
  Result<std::string> bytes = env_->ReadFile(file);
  if (!bytes.ok()) return 0;
  const std::string& b = bytes.value();
  if (b.size() < 36) return 0;
  auto u32 = [&b](size_t at) {
    uint32_t v = 0;
    for (int k = 3; k >= 0; --k) {
      v = (v << 8) | static_cast<uint8_t>(b[at + static_cast<size_t>(k)]);
    }
    return v;
  };
  if (u32(0) != kCheckpointMagic || u32(4) != kCheckpointVersion) return 0;
  uint64_t seq = 0;
  for (int k = 7; k >= 0; --k) {
    seq = (seq << 8) | static_cast<uint8_t>(b[20 + static_cast<size_t>(k)]);
  }
  return seq;
}

void CheckpointManager::InitSequenceFromDisk() {
  if (sequence_initialized_) return;
  sequence_initialized_ = true;
  // Rotated generations count toward the sequence even in legacy mode:
  // after keep_generations is lowered to 1, the bare-file writes must
  // outrank the leftover generations, not collide with them.
  for (const auto& [seq, file] : ListRotatedGenerations()) {
    next_sequence_ = std::max(next_sequence_, seq + 1);
  }
  if (!rotated() && env_->Exists(path_)) {
    next_sequence_ = std::max(next_sequence_, PeekSequence(path_) + 1);
  }
}

void CheckpointManager::Backoff(int attempt) {
  int64_t ms = options_.retry_backoff_ms;
  ms <<= attempt;
  if (ms > 0) options_.sleeper(static_cast<int>(std::min<int64_t>(ms, 10'000)));
}

Status CheckpointManager::Write(ChunkTag root_tag, std::string_view payload) {
  InitSequenceFromDisk();
  const uint64_t sequence = next_sequence_;
  const std::string target = rotated() ? GenerationPath(sequence) : path_;
  Status st;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++write_retries_;
      Backoff(attempt - 1);
    }
    st = WriteCheckpointFile(target, root_tag, payload, sequence, env_);
    if (st.ok()) break;
    if (st.code() != StatusCode::kUnavailable) return st;
  }
  if (!st.ok()) return st;
  next_sequence_ = sequence + 1;
  return Prune();
}

Status CheckpointManager::Prune() {
  auto generations = ListRotatedGenerations();  // oldest first
  // In legacy mode the bare file at path_ is the one retained copy, so
  // every rotated generation left behind by a previous higher-keep run
  // rotates away once a bare write has gone durable.
  const size_t keep =
      rotated() ? static_cast<size_t>(options_.keep_generations) : 0;
  if (generations.size() <= keep) return Status::Ok();
  Status first_error;
  for (size_t i = 0; i + keep < generations.size(); ++i) {
    // Never delete the generation the last Load restored from: after a
    // salvage fell back past corrupt husks (or keep_generations was
    // lowered between runs), it may be the only state this run is
    // built on until enough fresh generations are durable.
    if (generations[i].second == restored_file_) continue;
    Status st = env_->Remove(generations[i].second);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  // A failed prune never fails the checkpoint write — the new
  // generation is durable; we just retained more history than asked.
  (void)first_error;
  return Status::Ok();
}

Status CheckpointManager::Quarantine(const std::string& file) {
  ++quarantined_total_;
  return env_->Rename(file, file + ".corrupt");
}

Result<CheckpointManager::LoadInfo> CheckpointManager::Load(
    ChunkTag root_tag, const Restorer& restore) {
  InitSequenceFromDisk();
  // Candidates: every rotated generation on disk (even in legacy mode,
  // so lowering keep_generations between runs never hides resumable
  // state) plus the bare file, ordered by its recorded sequence — a
  // bare file written after the knob was lowered outranks the stale
  // generations it superseded, while a pre-rotation legacy file sorts
  // oldest.
  auto generations = ListRotatedGenerations();
  if (env_->Exists(path_)) {
    const uint64_t bare_seq =
        generations.empty() ? 0 : PeekSequence(path_);
    generations.emplace_back(bare_seq, path_);
    std::sort(generations.begin(), generations.end());
  }
  if (generations.empty()) {
    return Status::NotFound("no checkpoint at " + path_);
  }
  int quarantined = 0;
  Status last_error;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string& file = it->second;
    uint64_t sequence = 0;
    Result<std::string> payload = Status::Internal("unread");
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) Backoff(attempt - 1);
      payload = ReadCheckpointFile(file, root_tag, env_, &sequence);
      if (payload.ok() ||
          payload.status().code() != StatusCode::kUnavailable) {
        break;
      }
    }
    if (!payload.ok()) {
      const StatusCode code = payload.status().code();
      if (code == StatusCode::kNotFound) continue;  // pruned under us
      if (!IsSalvageCode(code)) return payload.status();  // environment down
      last_error = payload.status();
      COMFEDSV_RETURN_IF_ERROR(Quarantine(file));
      ++quarantined;
      continue;
    }
    if (restore) {
      Status st = restore(payload.value(), sequence);
      if (!st.ok()) {
        if (!IsSalvageCode(st.code())) return st;
        last_error = st;
        COMFEDSV_RETURN_IF_ERROR(Quarantine(file));
        ++quarantined;
        continue;
      }
    }
    next_sequence_ = std::max(next_sequence_, sequence + 1);
    restored_file_ = file;
    LoadInfo info;
    info.payload = std::move(payload).value();
    info.sequence = sequence;
    info.file = file;
    info.quarantined = quarantined;
    return info;
  }
  return Status::DataLoss(
      "every checkpoint generation at " + path_ + " failed validation (" +
      std::to_string(quarantined) + " quarantined; last error: " +
      last_error.ToString() + ")");
}

Result<int> CheckpointManager::SweepOrphans() {
  const std::string dir = DirOf(path_);
  const std::string base = BaseOf(path_);
  auto entries = env_->ListDir(dir);
  if (!entries.ok()) {
    if (entries.status().code() == StatusCode::kNotFound) return 0;
    return entries.status();
  }
  int swept = 0;
  constexpr std::string_view kTmp = ".tmp";
  for (const std::string& name : entries.value()) {
    if (name.size() <= kTmp.size() ||
        name.compare(name.size() - kTmp.size(), kTmp.size(), kTmp) != 0) {
      continue;
    }
    // `<base>.tmp` (legacy) or `<base>.<seq>.tmp` (rotated) only — a
    // sweep must never eat another stream's temp files.
    const std::string stem = name.substr(0, name.size() - kTmp.size());
    uint64_t seq = 0;
    if (stem != base && !ParseGenerationSuffix(stem, base, &seq)) continue;
    COMFEDSV_RETURN_IF_ERROR(env_->Remove(dir + "/" + name));
    ++swept;
  }
  return swept;
}

}  // namespace comfedsv
