#include "io/serialize.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.h"

namespace comfedsv {
namespace {

// Header layout, all little-endian:
//   [0, 4)   magic "CFSV"
//   [4, 8)   format version
//   [8, 12)  root chunk tag
//   [12, 20) payload length in bytes
//   [20, 28) FNV-1a 64 checksum of the payload
//   [28, ..) payload (one complete root chunk)
constexpr size_t kFileHeaderBytes = 28;

std::string TagName(uint32_t tag) {
  std::ostringstream out;
  out << "tag " << tag;
  return out.str();
}

}  // namespace

void BinaryWriter::U32(uint32_t v) {
  char buf[4];
  for (int b = 0; b < 4; ++b) {
    buf[b] = static_cast<char>((v >> (8 * b)) & 0xFFu);
  }
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::U64(uint64_t v) {
  char buf[8];
  for (int b = 0; b < 8; ++b) {
    buf[b] = static_cast<char>((v >> (8 * b)) & 0xFFu);
  }
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

size_t BinaryWriter::BeginChunk(ChunkTag tag) {
  U32(static_cast<uint32_t>(tag));
  const size_t handle = out_.size();
  U64(0);  // length placeholder, patched by EndChunk
  return handle;
}

void BinaryWriter::EndChunk(size_t handle) {
  COMFEDSV_CHECK_LE(handle + 8, out_.size());
  const uint64_t length = out_.size() - (handle + 8);
  for (int b = 0; b < 8; ++b) {
    out_[handle + b] = static_cast<char>((length >> (8 * b)) & 0xFFu);
  }
}

Status BinaryReader::U8(uint8_t* v) {
  if (remaining() < 1) {
    return Status::OutOfRange("truncated input: expected 1 byte");
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status BinaryReader::U32(uint32_t* v) {
  if (remaining() < 4) {
    return Status::OutOfRange("truncated input: expected 4 bytes");
  }
  uint32_t out = 0;
  for (int b = 0; b < 4; ++b) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 4;
  *v = out;
  return Status::Ok();
}

Status BinaryReader::U64(uint64_t* v) {
  if (remaining() < 8) {
    return Status::OutOfRange("truncated input: expected 8 bytes");
  }
  uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 8;
  *v = out;
  return Status::Ok();
}

Status BinaryReader::I32(int32_t* v) {
  uint32_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::Ok();
}

Status BinaryReader::I64(int64_t* v) {
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::Ok();
}

Status BinaryReader::F64(double* v) {
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  *v = std::bit_cast<double>(raw);
  return Status::Ok();
}

Status BinaryReader::BeginChunk(ChunkTag expected, size_t* end) {
  uint32_t tag = 0;
  COMFEDSV_RETURN_IF_ERROR(U32(&tag));
  if (tag != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument(
        "chunk tag mismatch: expected " +
        TagName(static_cast<uint32_t>(expected)) + ", found " +
        TagName(tag));
  }
  uint64_t length = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&length));
  if (length > remaining()) {
    return Status::OutOfRange("chunk length exceeds remaining bytes");
  }
  *end = pos_ + static_cast<size_t>(length);
  return Status::Ok();
}

Status BinaryReader::EndChunk(size_t end) {
  if (pos_ != end) {
    return Status::InvalidArgument(
        "chunk length mismatch: payload not fully consumed");
  }
  return Status::Ok();
}

Status BinaryReader::Count(size_t element_size, uint64_t* count) {
  COMFEDSV_CHECK_GT(element_size, 0u);
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  if (raw > remaining() / element_size) {
    return Status::OutOfRange("corrupt element count: payload cannot fit");
  }
  *count = raw;
  return Status::Ok();
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status WriteCheckpointFile(const std::string& path, ChunkTag root_tag,
                           std::string_view payload) {
  BinaryWriter header;
  header.U32(kCheckpointMagic);
  header.U32(kCheckpointVersion);
  header.U32(static_cast<uint32_t>(root_tag));
  header.U64(payload.size());
  header.U64(Fnv1a64(payload));

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::Internal("cannot open " + tmp_path + " for writing");
    }
    file.write(header.buffer().data(),
               static_cast<std::streamsize>(header.buffer().size()));
    file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    file.flush();
    if (!file) {
      return Status::Internal("short write to " + tmp_path);
    }
  }
#ifndef _WIN32
  // Flushing the stream only reaches the page cache; without an fsync a
  // system crash can persist the rename while the data blocks are lost,
  // leaving a checkpoint the loader rejects — and the resume path
  // deliberately refuses to silently restart from scratch on a corrupt
  // file. Sync the data before the rename makes it visible.
  {
    const int fd = open(tmp_path.c_str(), O_RDONLY);
    if (fd < 0 || fsync(fd) != 0) {
      if (fd >= 0) close(fd);
      std::remove(tmp_path.c_str());
      return Status::Internal("cannot fsync " + tmp_path);
    }
    close(fd);
  }
#endif
  // Atomic replace: a crash before the rename leaves the previous
  // checkpoint intact; a crash after it leaves the new one. There is no
  // in-between state a reader can observe. std::filesystem::rename
  // (unlike C rename) replaces an existing destination on every
  // platform.
  std::error_code rename_error;
  std::filesystem::rename(tmp_path, path, rename_error);
  if (rename_error) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename " + tmp_path + " over " + path +
                            ": " + rename_error.message());
  }
#ifndef _WIN32
  // Persist the rename itself (the directory entry). Failure here is
  // not fatal to the checkpoint's correctness — the old or new file
  // survives either way — so best-effort.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
#endif
  return Status::Ok();
}

Result<std::string> ReadCheckpointFile(const std::string& path,
                                       ChunkTag expected_root_tag) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open checkpoint file " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  std::string raw = std::move(contents).str();

  if (raw.size() < kFileHeaderBytes) {
    return Status::OutOfRange("checkpoint file truncated: no header");
  }
  BinaryReader reader(raw);
  uint32_t magic = 0, version = 0, tag = 0;
  uint64_t payload_len = 0, checksum = 0;
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(path + " is not a checkpoint file "
                                   "(bad magic)");
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&version));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&tag));
  if (tag != static_cast<uint32_t>(expected_root_tag)) {
    return Status::InvalidArgument(
        "checkpoint holds " + TagName(tag) + ", expected " +
        TagName(static_cast<uint32_t>(expected_root_tag)));
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&payload_len));
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&checksum));
  if (payload_len != raw.size() - kFileHeaderBytes) {
    return Status::OutOfRange("checkpoint file truncated or padded: "
                              "payload length mismatch");
  }
  std::string payload = raw.substr(kFileHeaderBytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::InvalidArgument("checkpoint payload corrupt: "
                                   "checksum mismatch");
  }
  return payload;
}

}  // namespace comfedsv
