#include "io/serialize.h"

#include <bit>
#include <sstream>

#include "common/check.h"
#include "io/file_env.h"

namespace comfedsv {
namespace {

// Header layout, all little-endian:
//   [0, 4)   magic "CFSV"
//   [4, 8)   format version
//   [8, 12)  root chunk tag
//   [12, 20) payload length in bytes
//   [20, 28) sequence number (monotonic per checkpoint stream)
//   [28, 36) FNV-1a 64 checksum of bytes [0, 28) followed by the payload
//   [36, ..) payload (one complete root chunk)
//
// The checksum covering the header prefix (not just the payload) means a
// flipped bit in *any* stored field — including the sequence number —
// fails the load instead of silently reordering generations.
constexpr size_t kChecksumOffset = 28;
constexpr size_t kFileHeaderBytes = 36;

std::string TagName(uint32_t tag) {
  std::ostringstream out;
  out << "tag " << tag;
  return out.str();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

}  // namespace

void BinaryWriter::U32(uint32_t v) {
  char buf[4];
  for (int b = 0; b < 4; ++b) {
    buf[b] = static_cast<char>((v >> (8 * b)) & 0xFFu);
  }
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::U64(uint64_t v) {
  char buf[8];
  for (int b = 0; b < 8; ++b) {
    buf[b] = static_cast<char>((v >> (8 * b)) & 0xFFu);
  }
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

size_t BinaryWriter::BeginChunk(ChunkTag tag) {
  U32(static_cast<uint32_t>(tag));
  const size_t handle = out_.size();
  U64(0);  // length placeholder, patched by EndChunk
  return handle;
}

void BinaryWriter::EndChunk(size_t handle) {
  COMFEDSV_CHECK_LE(handle + 8, out_.size());
  const uint64_t length = out_.size() - (handle + 8);
  for (int b = 0; b < 8; ++b) {
    out_[handle + b] = static_cast<char>((length >> (8 * b)) & 0xFFu);
  }
}

Status BinaryReader::U8(uint8_t* v) {
  if (remaining() < 1) {
    return Status::OutOfRange("truncated input: expected 1 byte");
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status BinaryReader::U32(uint32_t* v) {
  if (remaining() < 4) {
    return Status::OutOfRange("truncated input: expected 4 bytes");
  }
  uint32_t out = 0;
  for (int b = 0; b < 4; ++b) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 4;
  *v = out;
  return Status::Ok();
}

Status BinaryReader::U64(uint64_t* v) {
  if (remaining() < 8) {
    return Status::OutOfRange("truncated input: expected 8 bytes");
  }
  uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 8;
  *v = out;
  return Status::Ok();
}

Status BinaryReader::I32(int32_t* v) {
  uint32_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::Ok();
}

Status BinaryReader::I64(int64_t* v) {
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::Ok();
}

Status BinaryReader::F64(double* v) {
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  *v = std::bit_cast<double>(raw);
  return Status::Ok();
}

Status BinaryReader::BeginChunk(ChunkTag expected, size_t* end) {
  uint32_t tag = 0;
  COMFEDSV_RETURN_IF_ERROR(U32(&tag));
  if (tag != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument(
        "chunk tag mismatch: expected " +
        TagName(static_cast<uint32_t>(expected)) + ", found " +
        TagName(tag));
  }
  uint64_t length = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&length));
  if (length > remaining()) {
    return Status::OutOfRange("chunk length exceeds remaining bytes");
  }
  *end = pos_ + static_cast<size_t>(length);
  return Status::Ok();
}

Status BinaryReader::EndChunk(size_t end) {
  if (pos_ != end) {
    return Status::InvalidArgument(
        "chunk length mismatch: payload not fully consumed");
  }
  return Status::Ok();
}

Status BinaryReader::Count(size_t element_size, uint64_t* count) {
  COMFEDSV_CHECK_GT(element_size, 0u);
  uint64_t raw = 0;
  COMFEDSV_RETURN_IF_ERROR(U64(&raw));
  if (raw > remaining() / element_size) {
    return Status::OutOfRange("corrupt element count: payload cannot fit");
  }
  *count = raw;
  return Status::Ok();
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status WriteCheckpointFile(const std::string& path, ChunkTag root_tag,
                           std::string_view payload, uint64_t sequence,
                           FileEnv* env) {
  if (env == nullptr) env = FileEnv::Real();

  BinaryWriter prefix;
  prefix.U32(kCheckpointMagic);
  prefix.U32(kCheckpointVersion);
  prefix.U32(static_cast<uint32_t>(root_tag));
  prefix.U64(payload.size());
  prefix.U64(sequence);
  COMFEDSV_CHECK_EQ(prefix.size(), kChecksumOffset);

  std::string file_bytes;
  file_bytes.reserve(kFileHeaderBytes + payload.size());
  file_bytes.append(prefix.buffer());
  BinaryWriter checksum;
  checksum.U64(Fnv1a64(payload, Fnv1a64(prefix.buffer())));
  file_bytes.append(checksum.buffer());
  file_bytes.append(payload);

  // Write + fsync the temp file, then atomically rename it over the
  // destination: a crash before the rename leaves the previous
  // checkpoint intact; a crash after it leaves the new one. There is no
  // in-between state a reader can observe. The fsync before the rename
  // matters — without it a system crash can persist the rename while
  // the data blocks are lost, leaving a checkpoint the loader rejects.
  // Every failure path removes its temp file so retries and startup
  // sweeps never trip over stale `.tmp` debris.
  const std::string tmp_path = path + ".tmp";
  Status st = env->WriteFile(tmp_path, file_bytes);
  if (!st.ok()) {
    (void)env->Remove(tmp_path);
    return st;
  }
  st = env->SyncFile(tmp_path);
  if (!st.ok()) {
    (void)env->Remove(tmp_path);
    return st;
  }
  st = env->Rename(tmp_path, path);
  if (!st.ok()) {
    (void)env->Remove(tmp_path);
    return st;
  }
  // Persist the rename itself (the directory entry). On failure the
  // write is reported failed even though the data may have survived:
  // the caller cannot count on the rename being durable across a system
  // crash, and a retried write of the same bytes is idempotent.
  return env->SyncDir(DirOf(path));
}

Result<std::string> ReadCheckpointFile(const std::string& path,
                                       ChunkTag expected_root_tag,
                                       FileEnv* env, uint64_t* sequence) {
  if (env == nullptr) env = FileEnv::Real();
  Result<std::string> raw_or = env->ReadFile(path);
  if (!raw_or.ok()) {
    if (raw_or.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("cannot open checkpoint file " + path);
    }
    return raw_or.status();
  }
  const std::string raw = std::move(raw_or).value();

  if (raw.size() < kFileHeaderBytes) {
    return Status::DataLoss("checkpoint file truncated: no header");
  }
  BinaryReader reader(raw);
  uint32_t magic = 0, version = 0, tag = 0;
  uint64_t payload_len = 0, seq = 0, checksum = 0;
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::DataLoss(path + " is not a checkpoint file (bad magic)");
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&version));
  if (version != kCheckpointVersion) {
    return Status::FailedPrecondition(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U32(&tag));
  if (tag != static_cast<uint32_t>(expected_root_tag)) {
    return Status::InvalidArgument(
        "checkpoint holds " + TagName(tag) + ", expected " +
        TagName(static_cast<uint32_t>(expected_root_tag)));
  }
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&payload_len));
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&seq));
  COMFEDSV_RETURN_IF_ERROR(reader.U64(&checksum));
  if (payload_len != raw.size() - kFileHeaderBytes) {
    return Status::DataLoss("checkpoint file truncated or padded: "
                            "payload length mismatch");
  }
  const std::string_view view(raw);
  const std::string payload(view.substr(kFileHeaderBytes));
  if (Fnv1a64(payload, Fnv1a64(view.substr(0, kChecksumOffset))) !=
      checksum) {
    return Status::DataLoss("checkpoint corrupt: checksum mismatch");
  }
  if (sequence != nullptr) *sequence = seq;
  return payload;
}

}  // namespace comfedsv
