#include "io/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace comfedsv {
namespace {

// Shape fields are written as u64 but must survive the round trip
// through the types' int/size_t fields; caps keep a corrupt shape from
// overflowing int arithmetic downstream.
constexpr uint64_t kMaxDim = std::numeric_limits<int32_t>::max();

Status CheckNonNegative(int64_t v, const char* what) {
  if (v < 0) {
    return Status::DataLoss(std::string(what) +
                                   " must be non-negative");
  }
  return Status::Ok();
}

void SaveDoubleSpan(const double* data, uint64_t count, BinaryWriter* out) {
  out->Reserve((count + 1) * 8);
  out->U64(count);
  for (uint64_t i = 0; i < count; ++i) out->F64(data[i]);
}

Status LoadDoubleSpan(BinaryReader* in, std::vector<double>* values) {
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(8, &count));
  values->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    COMFEDSV_RETURN_IF_ERROR(in->F64(&(*values)[i]));
  }
  return Status::Ok();
}

void SaveInt64Span(const std::vector<int64_t>& values, BinaryWriter* out) {
  out->Reserve((values.size() + 1) * 8);
  out->U64(values.size());
  for (int64_t v : values) out->I64(v);
}

Status LoadInt64Span(BinaryReader* in, std::vector<int64_t>* values,
                     const char* what) {
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(8, &count));
  values->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    COMFEDSV_RETURN_IF_ERROR(in->I64(&(*values)[i]));
    COMFEDSV_RETURN_IF_ERROR(CheckNonNegative((*values)[i], what));
  }
  return Status::Ok();
}

void SaveClientSet(const std::vector<int>& clients, BinaryWriter* out) {
  out->U64(clients.size());
  for (int client : clients) out->I32(client);
}

// Loads a sorted, strictly increasing client set bounded by
// `num_clients`; `what` names the set in error messages.
Status LoadClientSet(BinaryReader* in, uint64_t num_clients,
                     const char* what, std::vector<int>* clients) {
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(4, &count));
  if (count > num_clients) {
    return Status::DataLoss(std::string("corrupt ") + what +
                                   ": more entries than clients");
  }
  clients->resize(count);
  int prev = -1;
  for (uint64_t i = 0; i < count; ++i) {
    COMFEDSV_RETURN_IF_ERROR(in->I32(&(*clients)[i]));
    if ((*clients)[i] <= prev ||
        (*clients)[i] >= static_cast<int>(num_clients)) {
      return Status::DataLoss(std::string("corrupt ") + what +
                                     ": set not sorted in range");
    }
    prev = (*clients)[i];
  }
  return Status::Ok();
}

void SaveQuarantineReport(const QuarantineReport& q, BinaryWriter* out) {
  SaveInt64Span(q.rejected, out);
  SaveInt64Span(q.clipped, out);
  SaveInt64Span(q.quarantine_drops, out);
  out->I64(q.rounds_degraded);
  out->I64(q.rounds_fully_rejected);
}

Status LoadQuarantineReport(BinaryReader* in, QuarantineReport* q) {
  QuarantineReport loaded;
  COMFEDSV_RETURN_IF_ERROR(
      LoadInt64Span(in, &loaded.rejected, "quarantine rejection count"));
  COMFEDSV_RETURN_IF_ERROR(
      LoadInt64Span(in, &loaded.clipped, "quarantine clip count"));
  COMFEDSV_RETURN_IF_ERROR(LoadInt64Span(in, &loaded.quarantine_drops,
                                         "quarantine drop count"));
  if (loaded.clipped.size() != loaded.rejected.size() ||
      loaded.quarantine_drops.size() != loaded.rejected.size()) {
    return Status::DataLoss(
        "corrupt quarantine report: counter lengths differ");
  }
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.rounds_degraded));
  COMFEDSV_RETURN_IF_ERROR(
      CheckNonNegative(loaded.rounds_degraded, "rounds_degraded"));
  COMFEDSV_RETURN_IF_ERROR(in->I64(&loaded.rounds_fully_rejected));
  COMFEDSV_RETURN_IF_ERROR(CheckNonNegative(loaded.rounds_fully_rejected,
                                            "rounds_fully_rejected"));
  if (loaded.rounds_fully_rejected > loaded.rounds_degraded) {
    return Status::DataLoss(
        "corrupt quarantine report: fully-rejected exceeds degraded");
  }
  *q = loaded;
  return Status::Ok();
}

}  // namespace

void SaveVector(const Vector& v, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kVector);
  SaveDoubleSpan(v.data(), v.size(), out);
  out->EndChunk(handle);
}

Status LoadVector(BinaryReader* in, Vector* v) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kVector, &end));
  std::vector<double> values;
  COMFEDSV_RETURN_IF_ERROR(LoadDoubleSpan(in, &values));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *v = Vector(std::move(values));
  return Status::Ok();
}

void SaveMatrix(const Matrix& m, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kMatrix);
  const size_t entries = m.rows() * m.cols();
  out->Reserve((entries + 2) * 8);
  out->U64(m.rows());
  out->U64(m.cols());
  for (size_t i = 0; i < entries; ++i) out->F64(m.data()[i]);
  out->EndChunk(handle);
}

Status LoadMatrix(BinaryReader* in, Matrix* m) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kMatrix, &end));
  uint64_t rows = 0, cols = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U64(&rows));
  COMFEDSV_RETURN_IF_ERROR(in->U64(&cols));
  if (rows > kMaxDim || cols > kMaxDim ||
      (cols > 0 && rows > in->remaining() / 8 / cols)) {
    return Status::OutOfRange("corrupt matrix shape: entries cannot fit");
  }
  Matrix loaded(rows, cols);
  for (size_t i = 0; i < loaded.rows() * loaded.cols(); ++i) {
    COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.data()[i]));
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *m = std::move(loaded);
  return Status::Ok();
}

void SaveDataset(const Dataset& d, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kDataset);
  out->I32(d.num_classes());
  SaveMatrix(d.features(), out);
  out->U64(d.labels().size());
  for (int label : d.labels()) out->I32(label);
  out->EndChunk(handle);
}

Status LoadDataset(BinaryReader* in, Dataset* d) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kDataset, &end));
  int32_t num_classes = 0;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&num_classes));
  Matrix features;
  COMFEDSV_RETURN_IF_ERROR(LoadMatrix(in, &features));
  uint64_t num_labels = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(4, &num_labels));
  if (num_labels != features.rows()) {
    return Status::DataLoss(
        "corrupt dataset: label count does not match feature rows");
  }
  std::vector<int> labels(num_labels);
  for (uint64_t i = 0; i < num_labels; ++i) {
    int32_t label = 0;
    COMFEDSV_RETURN_IF_ERROR(in->I32(&label));
    if (label < 0 || label >= num_classes) {
      return Status::DataLoss(
          "corrupt dataset: label out of [0, num_classes)");
    }
    labels[i] = label;
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  if (num_classes == 0) {
    // Only the default (empty) dataset has no classes; its constructor
    // requires num_classes > 0, so rebuild it as a default object.
    if (features.rows() != 0 || features.cols() != 0) {
      return Status::DataLoss(
          "corrupt dataset: zero classes with non-empty features");
    }
    *d = Dataset();
    return Status::Ok();
  }
  if (num_classes < 0) {
    return Status::DataLoss("corrupt dataset: negative num_classes");
  }
  *d = Dataset(std::move(features), std::move(labels), num_classes);
  return Status::Ok();
}

void SaveRngState(const RngState& s, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kRngState);
  for (uint64_t word : s.words) out->U64(word);
  out->U8(s.has_cached_gaussian ? 1 : 0);
  out->F64(s.cached_gaussian);
  out->EndChunk(handle);
}

Status LoadRngState(BinaryReader* in, RngState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kRngState, &end));
  RngState loaded;
  for (uint64_t& word : loaded.words) {
    COMFEDSV_RETURN_IF_ERROR(in->U64(&word));
  }
  uint8_t has_cached = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U8(&has_cached));
  if (has_cached > 1) {
    return Status::DataLoss("corrupt rng state: bad gaussian flag");
  }
  loaded.has_cached_gaussian = has_cached != 0;
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.cached_gaussian));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  if ((loaded.words[0] | loaded.words[1] | loaded.words[2] |
       loaded.words[3]) == 0) {
    return Status::DataLoss(
        "corrupt rng state: all-zero xoshiro state");
  }
  *s = loaded;
  return Status::Ok();
}

void SaveRoundRecord(const RoundRecord& r, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kRoundRecord);
  out->I32(r.round);
  out->F64(r.test_loss_before);
  SaveVector(r.global_before, out);
  out->U64(r.local_models.size());
  for (const Vector& local : r.local_models) SaveVector(local, out);
  SaveClientSet(r.selected, out);
  SaveClientSet(r.rejected, out);
  SaveClientSet(r.dropped, out);
  out->EndChunk(handle);
}

Status LoadRoundRecord(BinaryReader* in, RoundRecord* r) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kRoundRecord, &end));
  RoundRecord loaded;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&loaded.round));
  COMFEDSV_RETURN_IF_ERROR(CheckNonNegative(loaded.round, "round"));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.test_loss_before));
  COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &loaded.global_before));
  uint64_t num_locals = 0;
  // A serialized Vector chunk costs at least its 12-byte header.
  COMFEDSV_RETURN_IF_ERROR(in->Count(12, &num_locals));
  loaded.local_models.resize(num_locals);
  for (uint64_t i = 0; i < num_locals; ++i) {
    COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &loaded.local_models[i]));
    if (loaded.local_models[i].size() != loaded.global_before.size()) {
      return Status::DataLoss(
          "corrupt round record: local model size mismatch");
    }
  }
  COMFEDSV_RETURN_IF_ERROR(LoadClientSet(
      in, num_locals, "round record selected set", &loaded.selected));
  COMFEDSV_RETURN_IF_ERROR(LoadClientSet(
      in, num_locals, "round record rejected set", &loaded.rejected));
  COMFEDSV_RETURN_IF_ERROR(LoadClientSet(
      in, num_locals, "round record dropped set", &loaded.dropped));
  if (!std::includes(loaded.selected.begin(), loaded.selected.end(),
                     loaded.rejected.begin(), loaded.rejected.end())) {
    return Status::DataLoss(
        "corrupt round record: rejected set not a subset of selected");
  }
  std::vector<int> overlap;
  std::set_intersection(loaded.selected.begin(), loaded.selected.end(),
                        loaded.dropped.begin(), loaded.dropped.end(),
                        std::back_inserter(overlap));
  if (!overlap.empty()) {
    return Status::DataLoss(
        "corrupt round record: dropped set overlaps selected");
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *r = std::move(loaded);
  return Status::Ok();
}

void SaveTrainingResult(const TrainingResult& t, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kTrainingResult);
  out->I32(t.rounds_run);
  out->F64(t.final_test_accuracy);
  SaveVector(t.final_params, out);
  SaveDoubleSpan(t.test_loss_history.data(), t.test_loss_history.size(),
                 out);
  SaveQuarantineReport(t.quarantine, out);
  out->EndChunk(handle);
}

Status LoadTrainingResult(BinaryReader* in, TrainingResult* t) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kTrainingResult, &end));
  TrainingResult loaded;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&loaded.rounds_run));
  COMFEDSV_RETURN_IF_ERROR(CheckNonNegative(loaded.rounds_run, "rounds_run"));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&loaded.final_test_accuracy));
  COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &loaded.final_params));
  COMFEDSV_RETURN_IF_ERROR(LoadDoubleSpan(in, &loaded.test_loss_history));
  COMFEDSV_RETURN_IF_ERROR(LoadQuarantineReport(in, &loaded.quarantine));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *t = std::move(loaded);
  return Status::Ok();
}

void SaveInterner(const CoalitionInterner& interner, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kCoalitionInterner);
  const int size = interner.size();
  const int universe =
      size > 0 ? interner.Get(0).universe_size() : 0;
  out->I32(universe);
  out->U64(static_cast<uint64_t>(size));
  for (int col = 0; col < size; ++col) {
    const std::vector<int> members = interner.Get(col).Members();
    out->U64(members.size());
    for (int member : members) out->I32(member);
  }
  out->EndChunk(handle);
}

Status LoadInterner(BinaryReader* in, CoalitionInterner* interner) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(
      in->BeginChunk(ChunkTag::kCoalitionInterner, &end));
  int32_t universe = 0;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&universe));
  COMFEDSV_RETURN_IF_ERROR(CheckNonNegative(universe, "universe size"));
  uint64_t size = 0;
  // Each coalition costs at least its 8-byte member count.
  COMFEDSV_RETURN_IF_ERROR(in->Count(8, &size));
  CoalitionInterner loaded;
  for (uint64_t col = 0; col < size; ++col) {
    uint64_t num_members = 0;
    COMFEDSV_RETURN_IF_ERROR(in->Count(4, &num_members));
    if (num_members > static_cast<uint64_t>(universe)) {
      return Status::DataLoss(
          "corrupt interner: coalition larger than its universe");
    }
    Coalition c(universe);
    int prev = -1;
    for (uint64_t i = 0; i < num_members; ++i) {
      int32_t member = 0;
      COMFEDSV_RETURN_IF_ERROR(in->I32(&member));
      if (member <= prev || member >= universe) {
        return Status::DataLoss(
            "corrupt interner: members not sorted in range");
      }
      c.Add(member);
      prev = member;
    }
    if (loaded.Intern(c) != static_cast<int>(col)) {
      return Status::DataLoss(
          "corrupt interner: duplicate coalition breaks dense ids");
    }
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *interner = std::move(loaded);
  return Status::Ok();
}

void SaveObservationSet(const ObservationSet& obs, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kObservationSet);
  out->I32(obs.num_rows());
  out->I32(obs.num_cols());
  out->U8(obs.finalized() ? 1 : 0);
  out->U64(obs.entries().size());
  for (const Observation& o : obs.entries()) {
    out->I32(o.row);
    out->I32(o.col);
    out->F64(o.value);
  }
  out->EndChunk(handle);
}

Status LoadObservationSet(BinaryReader* in, ObservationSet* obs) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kObservationSet, &end));
  int32_t num_rows = 0, num_cols = 0;
  COMFEDSV_RETURN_IF_ERROR(in->I32(&num_rows));
  COMFEDSV_RETURN_IF_ERROR(in->I32(&num_cols));
  if (num_rows <= 0 || num_cols <= 0) {
    return Status::DataLoss(
        "corrupt observation set: non-positive shape");
  }
  uint8_t finalized = 0;
  COMFEDSV_RETURN_IF_ERROR(in->U8(&finalized));
  if (finalized > 1) {
    return Status::DataLoss(
        "corrupt observation set: bad finalized flag");
  }
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(16, &count));
  ObservationSet loaded(num_rows, num_cols);
  loaded.Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int32_t row = 0, col = 0;
    double value = 0.0;
    COMFEDSV_RETURN_IF_ERROR(in->I32(&row));
    COMFEDSV_RETURN_IF_ERROR(in->I32(&col));
    COMFEDSV_RETURN_IF_ERROR(in->F64(&value));
    if (row < 0 || row >= num_rows || col < 0 || col >= num_cols) {
      return Status::DataLoss(
          "corrupt observation set: entry out of bounds");
    }
    loaded.Add(row, col, value);
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  // The CSR/CSC views are a deterministic function of the triplets, so
  // finalized sets rebuild them rather than trusting serialized arrays.
  if (finalized != 0) loaded.Finalize();
  *obs = std::move(loaded);
  return Status::Ok();
}

void SaveFactorPair(const FactorPair& f, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kFactorPair);
  SaveMatrix(f.w, out);
  SaveMatrix(f.h, out);
  out->EndChunk(handle);
}

Status LoadFactorPair(BinaryReader* in, FactorPair* f) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kFactorPair, &end));
  FactorPair loaded;
  COMFEDSV_RETURN_IF_ERROR(LoadMatrix(in, &loaded.w));
  COMFEDSV_RETURN_IF_ERROR(LoadMatrix(in, &loaded.h));
  if (loaded.w.cols() != loaded.h.cols()) {
    return Status::DataLoss(
        "corrupt factor pair: W and H rank mismatch");
  }
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  *f = std::move(loaded);
  return Status::Ok();
}

void SaveTrainerState(const FedAvgTrainerState& s, BinaryWriter* out) {
  const size_t handle = out->BeginChunk(ChunkTag::kTrainerState);
  out->U64(s.config_fingerprint);
  out->I32(s.next_round);
  SaveVector(s.params, out);
  SaveDoubleSpan(s.test_loss_history.data(), s.test_loss_history.size(),
                 out);
  SaveRngState(s.select_rng, out);
  SaveQuarantineReport(s.quarantine, out);
  out->EndChunk(handle);
}

Status LoadTrainerState(BinaryReader* in, FedAvgTrainerState* s) {
  size_t end = 0;
  COMFEDSV_RETURN_IF_ERROR(in->BeginChunk(ChunkTag::kTrainerState, &end));
  FedAvgTrainerState loaded;
  COMFEDSV_RETURN_IF_ERROR(in->U64(&loaded.config_fingerprint));
  COMFEDSV_RETURN_IF_ERROR(in->I32(&loaded.next_round));
  COMFEDSV_RETURN_IF_ERROR(
      CheckNonNegative(loaded.next_round, "next_round"));
  COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &loaded.params));
  COMFEDSV_RETURN_IF_ERROR(LoadDoubleSpan(in, &loaded.test_loss_history));
  COMFEDSV_RETURN_IF_ERROR(LoadRngState(in, &loaded.select_rng));
  COMFEDSV_RETURN_IF_ERROR(LoadQuarantineReport(in, &loaded.quarantine));
  COMFEDSV_RETURN_IF_ERROR(in->EndChunk(end));
  if (loaded.test_loss_history.size() !=
      static_cast<size_t>(loaded.next_round)) {
    return Status::DataLoss(
        "corrupt trainer state: loss history length mismatch");
  }
  *s = std::move(loaded);
  return Status::Ok();
}

}  // namespace comfedsv
