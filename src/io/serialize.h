// Versioned, endian-stable binary serialization: the byte-level layer of
// the checkpoint format (see io/checkpoint.h for the per-type
// serializers and README.md "Checkpointing & streaming valuation" for
// the on-disk layout).
//
// Design rules:
//   * Everything on disk is little-endian, composed and decomposed with
//     explicit byte shifts — a checkpoint written on any host loads on
//     any other.
//   * Every object is framed as a *chunk*: u32 type tag, u64 payload
//     length, payload. Nested objects nest chunks. Readers validate the
//     tag, bound the payload against the remaining bytes, and check that
//     parsing consumed exactly the declared length.
//   * A checkpoint *file* adds a fixed header — magic, format version,
//     root chunk tag, payload length, FNV-1a checksum — so truncation,
//     version skew, and byte corruption are all detected up front and
//     reported as error Status (never a crash, never silently loaded
//     garbage).
//   * Readers return Status for every malformed input; COMFEDSV_CHECK is
//     reserved for programmer errors on the write side.
#ifndef COMFEDSV_IO_SERIALIZE_H_
#define COMFEDSV_IO_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace comfedsv {

class FileEnv;

/// First four bytes of every checkpoint file: "CFSV".
inline constexpr uint32_t kCheckpointMagic = 0x56534643u;
/// Format version written by this build; readers reject any other.
/// v2: RoundRecord gained rejected/dropped client sets; trainer state
/// and training result gained the aggregation-guard QuarantineReport.
/// v3: the header gained a u64 sequence number (monotonic per
/// checkpoint stream, used by CheckpointManager generation rotation)
/// and the checksum now covers the header prefix as well as the
/// payload, so corruption of any header field is detected.
inline constexpr uint32_t kCheckpointVersion = 3;

/// Chunk type tags. Stable on disk — append, never renumber.
enum class ChunkTag : uint32_t {
  kVector = 1,
  kMatrix = 2,
  kDataset = 3,
  kRngState = 4,
  kRoundRecord = 5,
  kTrainingResult = 6,
  kCoalitionInterner = 7,
  kObservationSet = 8,
  kFactorPair = 9,
  kTrainerState = 10,
  kFedSvState = 11,
  kFullRecorderState = 12,
  kObservedRecorderState = 13,
  kSampledRecorderState = 14,
  kValuationCheckpoint = 15,
  kStreamingEngineState = 16,
  kRoundLogIndex = 17,
};

/// Appends little-endian primitives and length-framed chunks to an
/// in-memory buffer. Writing cannot fail (allocation aside), so the
/// write API returns void.
class BinaryWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);

  /// Writes the chunk header (tag + u64 length placeholder) and returns
  /// a handle for EndChunk, which patches the real payload length.
  size_t BeginChunk(ChunkTag tag);
  void EndChunk(size_t handle);

  /// Pre-grows the buffer by `additional` bytes — serializers call this
  /// before writing large spans (checkpoints re-serialize the full
  /// accumulated state every cadence save, so reallocation churn adds
  /// up).
  void Reserve(size_t additional) { out_.reserve(out_.size() + additional); }

  const std::string& buffer() const { return out_; }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Reads little-endian primitives and chunks from a byte buffer. Every
/// read is bounds-checked and returns an error Status on truncation; the
/// reader never throws and never reads out of bounds. The reader does
/// not own the buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);

  /// Reads and validates a chunk header: the tag must equal `expected`
  /// and the declared payload length must fit in the remaining bytes.
  /// On success `*end` is the buffer position one past the chunk.
  Status BeginChunk(ChunkTag expected, size_t* end);
  /// Validates that parsing consumed the chunk exactly: the current
  /// position must equal `end` from the matching BeginChunk.
  Status EndChunk(size_t end);

  /// Reads a u64 element count for an array of `element_size`-byte
  /// elements and rejects counts whose payload could not possibly fit in
  /// the remaining bytes — so a corrupted length field fails cleanly
  /// instead of driving a multi-gigabyte allocation.
  Status Count(size_t element_size, uint64_t* count);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit checksum (the file-header integrity check). Pass a
/// previous return value as `seed` to checksum a discontiguous span.
uint64_t Fnv1a64(std::string_view bytes,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/// Serializes `payload` (the body of a root chunk with tag `root_tag`)
/// into the checkpoint file container: header (magic, version, tag,
/// length, sequence, checksum) + payload, written to `path + ".tmp"`
/// and renamed over `path` so a crash mid-write never leaves a
/// half-written checkpoint behind. Every failure path removes its
/// `.tmp`; a directory-fsync failure after the rename is surfaced as
/// non-OK (the rename may not be durable — callers treat the write as
/// failed and retry).
///
/// `sequence` is stored in the header and returned by
/// ReadCheckpointFile — CheckpointManager uses it to order rotated
/// generations. All I/O goes through `env` (nullptr = the real
/// filesystem).
Status WriteCheckpointFile(const std::string& path, ChunkTag root_tag,
                           std::string_view payload, uint64_t sequence = 0,
                           FileEnv* env = nullptr);

/// Reads a checkpoint file and validates magic, version, root tag,
/// payload length, and checksum. Returns the payload bytes (the root
/// chunk body) on success and, when `sequence` is non-null, the
/// header's sequence number.
///
/// Error codes follow the salvage contract:
///   * NotFound           — no file at `path`
///   * DataLoss           — truncation, bad magic, or checksum mismatch
///   * FailedPrecondition — format version skew
///   * InvalidArgument    — wrong root tag, or `path` is a directory
///   * Unavailable        — transient read failure
Result<std::string> ReadCheckpointFile(const std::string& path,
                                       ChunkTag expected_root_tag,
                                       FileEnv* env = nullptr,
                                       uint64_t* sequence = nullptr);

}  // namespace comfedsv

#endif  // COMFEDSV_IO_SERIALIZE_H_
