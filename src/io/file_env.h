// FileEnv: the filesystem seam under the checkpoint layer.
//
// Every byte the io/ layer moves to or from disk goes through one of
// these virtual operations, so a test can substitute a fault-injecting
// environment and prove the checkpoint pipeline crash-consistent
// without root, loop devices, or real ENOSPC. The default environment
// (FileEnv::Real()) is the plain filesystem.
//
// Status code contract (the manager's salvage logic keys off these):
//   * NotFound          — the path does not exist
//   * InvalidArgument   — the path exists but is the wrong kind of
//                         object (e.g. reading a directory as a file)
//   * Unavailable       — a transient environment failure (EIO, ENOSPC,
//                         interrupted write); retrying may succeed
//
// FaultInjectingFileEnv consults the failpoint registry
// (common/failpoint.h) on every operation under the names
// `failpoints::k*` below, and realizes the armed FaultAction: error
// injection, short writes, torn renames, and a sticky "crashed" state
// that fails everything until ClearCrash() — the building blocks of the
// crash-sweep harness in tests/io_recovery_test.cc.
#ifndef COMFEDSV_IO_FILE_ENV_H_
#define COMFEDSV_IO_FILE_ENV_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace comfedsv {

/// A read-only byte window over part of a file, returned by
/// FileEnv::MapRange. Owns the mapping: destruction (or move-assignment
/// over it) releases the pages. Move-only.
class MappedRegion {
 public:
  MappedRegion() = default;
  MappedRegion(const char* data, size_t size, std::function<void()> unmap)
      : data_(data), size_(size), unmap_(std::move(unmap)) {}
  ~MappedRegion() { Reset(); }

  MappedRegion(MappedRegion&& other) noexcept { *this = std::move(other); }
  MappedRegion& operator=(MappedRegion&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      unmap_ = std::move(other.unmap_);
      other.data_ = nullptr;
      other.size_ = 0;
      other.unmap_ = nullptr;
    }
    return *this;
  }
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  void Reset() {
    if (unmap_) unmap_();
    data_ = nullptr;
    size_ = 0;
    unmap_ = nullptr;
  }

  const char* data_ = nullptr;
  size_t size_ = 0;
  std::function<void()> unmap_;
};

class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// Creates/truncates `path` and writes all of `data`, flushing to the
  /// OS before returning. Partial writes are reported Unavailable (the
  /// on-disk prefix is unspecified).
  virtual Status WriteFile(const std::string& path, std::string_view data);

  /// fsync(2) of an existing file's contents.
  virtual Status SyncFile(const std::string& path);

  /// Atomically renames `from` over `to`, replacing any existing `to`.
  virtual Status Rename(const std::string& from, const std::string& to);

  /// fsync(2) of a directory — persists rename/unlink entries. Windows
  /// has no directory handles to sync; there this is a no-op Ok.
  virtual Status SyncDir(const std::string& dir);

  /// Reads the entire file. NotFound when missing, InvalidArgument when
  /// `path` is a directory.
  virtual Result<std::string> ReadFile(const std::string& path);

  /// Removes a file. Ok when the file did not exist (idempotent — the
  /// callers use this for cleanup of maybe-written temp files).
  virtual Status Remove(const std::string& path);

  /// Names (not full paths) of the entries of `dir`. NotFound when the
  /// directory does not exist.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir);

  virtual bool Exists(const std::string& path);

  // Range/append operations used by the round-log layer (io/round_log.h).

  /// Appends all of `data` to `path`, creating the file when missing,
  /// flushing to the OS before returning. A partial append is reported
  /// Unavailable (some prefix of `data` may have landed).
  virtual Status AppendFile(const std::string& path, std::string_view data);

  /// Reads up to `length` bytes starting at byte `offset`. Returns the
  /// bytes that exist — fewer than `length` when the file ends inside
  /// the range, empty when `offset` is at or past EOF. NotFound when the
  /// file is missing.
  virtual Result<std::string> ReadFileRange(const std::string& path,
                                            uint64_t offset,
                                            uint64_t length);

  /// Size of the file in bytes. NotFound when missing.
  virtual Result<uint64_t> FileSize(const std::string& path);

  /// Truncates (or zero-extends) the file to exactly `size` bytes.
  virtual Status Truncate(const std::string& path, uint64_t size);

  /// Maps `length` bytes at `offset` for reading. The region stays
  /// valid until destroyed; the range is clamped to the file size (the
  /// returned region may be shorter than requested). Unavailable when
  /// mapping is not possible — callers fall back to ReadFileRange.
  virtual Result<MappedRegion> MapRange(const std::string& path,
                                        uint64_t offset, uint64_t length);

  /// The real filesystem. Never null; shared process-wide.
  static FileEnv* Real();
};

/// Failpoint names instrumented by FaultInjectingFileEnv — one per
/// FileEnv operation. The crash-sweep harness treats this list as the
/// fault surface of the checkpoint pipeline.
namespace failpoints {
inline constexpr const char* kWriteFile = "io/write_file";
inline constexpr const char* kSyncFile = "io/sync_file";
inline constexpr const char* kRename = "io/rename";
inline constexpr const char* kSyncDir = "io/sync_dir";
inline constexpr const char* kReadFile = "io/read_file";
inline constexpr const char* kRemove = "io/remove";
inline constexpr const char* kListDir = "io/list_dir";
inline constexpr const char* kAppendFile = "io/append_file";
inline constexpr const char* kReadRange = "io/read_range";
inline constexpr const char* kTruncate = "io/truncate";
inline constexpr const char* kMmap = "io/mmap";

/// Every instrumented failpoint, in the order the sweep iterates them.
const std::vector<std::string>& All();
}  // namespace failpoints

/// What a firing failpoint does to the operation, passed as the
/// FailpointRegistry action code.
enum class FaultAction : int {
  /// Fail with Unavailable("injected I/O error") — a transient EIO.
  kError = 1,
  /// Fail with Unavailable("injected ENOSPC") — disk full. WriteFile
  /// additionally persists only the first `arg` bytes, like a real
  /// out-of-space short write; AppendFile appends only that prefix.
  kEnospc = 2,
  /// WriteFile/AppendFile only: persist (append) the first `arg` bytes,
  /// then fail Unavailable — a torn write.
  kShortWrite = 3,
  /// Rename only: perform the rename, then truncate the destination to
  /// `arg` bytes and report Ok — the "rename entry durable, data blocks
  /// lost" crash pattern the checksum + salvage path must absorb.
  kTornRename = 4,
  /// Enter the sticky crashed state: this operation and every later one
  /// fail Unavailable until ClearCrash(). WriteFile persists (AppendFile
  /// appends) the first `arg` bytes before dying (a mid-write kill -9).
  kCrash = 5,
};

/// A FileEnv decorator that injects faults per the failpoint registry.
/// Wraps any base environment (default: the real filesystem).
class FaultInjectingFileEnv : public FileEnv {
 public:
  explicit FaultInjectingFileEnv(FileEnv* base = FileEnv::Real())
      : base_(base) {}

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status SyncFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<MappedRegion> MapRange(const std::string& path, uint64_t offset,
                                uint64_t length) override;

  /// True once a kCrash action fired (every operation now fails).
  bool crashed() const { return crashed_; }
  /// "Restart the process": clear the crashed state. On-disk state is
  /// whatever the crash left behind — recovery code picks it up.
  void ClearCrash() { crashed_ = false; }

 private:
  /// Consults the registry; returns the fault to apply, if any, and
  /// handles the sticky crash state.
  Status Check(const char* name, std::string_view write_data,
               const std::string& write_path);

  FileEnv* base_;
  bool crashed_ = false;
};

}  // namespace comfedsv

#endif  // COMFEDSV_IO_FILE_ENV_H_
