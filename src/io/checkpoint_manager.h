// CheckpointManager: durable, self-healing checkpoint storage.
//
// The PR-5 checkpoint path kept exactly one file and aborted the run on
// any I/O failure. The manager upgrades that contract:
//
//   * Rotated generations — with keep_generations >= 2, each Write()
//     lands in its own file `path.<seq>` (zero-padded, monotonic
//     sequence also recorded in the file header) and the oldest files
//     beyond the retention window are pruned. keep_generations == 1
//     preserves the legacy single-file-at-`path` layout byte-for-byte.
//   * Transient-error retry — writes and reads that fail Unavailable
//     (EIO, ENOSPC, interrupted) are retried up to max_retries times
//     with deterministic exponential backoff through an injectable
//     sleeper, so tests replay retry schedules without wall-clock time.
//   * Startup sweep — SweepOrphans() removes `.tmp` debris left by a
//     crash mid-write.
//   * Salvage on load — Load() walks generations newest-first; a file
//     failing checksum/validation (DataLoss) is quarantined (renamed
//     `*.corrupt`, never deleted — it is evidence) and the next-older
//     generation is tried, so "newest generation that actually restores"
//     wins. Only DataLoss salvages: FailedPrecondition (version skew,
//     fingerprint mismatch) and InvalidArgument (wrong root tag) mean an
//     intact file from a different run or build, and propagate — never a
//     silent restart under the wrong inputs.
//
// All I/O goes through a FileEnv, so the crash-sweep harness drives the
// whole stack with injected faults (see io/file_env.h).
#ifndef COMFEDSV_IO_CHECKPOINT_MANAGER_H_
#define COMFEDSV_IO_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/serialize.h"

namespace comfedsv {

class FileEnv;

struct CheckpointManagerOptions {
  /// How many checkpoint generations to retain. 1 (default) keeps the
  /// legacy layout: a single file at exactly `path`. >= 2 enables
  /// rotation: files named `path.<8-digit seq>`, oldest pruned.
  int keep_generations = 1;
  /// Extra attempts after a transient (Unavailable) failure, per
  /// operation. 0 disables retry.
  int max_retries = 2;
  /// Backoff before retry k (1-based) is `retry_backoff_ms << (k-1)`
  /// milliseconds — deterministic, no jitter, reproducible.
  int retry_backoff_ms = 5;
  /// Receives each backoff in ms. Defaults to sleeping; tests inject a
  /// recorder to assert the schedule without waiting it out.
  std::function<void(int)> sleeper;
  /// File system to operate on. nullptr = the real one.
  FileEnv* env = nullptr;
};

class CheckpointManager {
 public:
  /// Validates a candidate payload during Load salvage. Returning
  /// DataLoss (corrupt stored state) quarantines the generation and
  /// falls back to an older one; any other non-OK status (fingerprint
  /// mismatch, version skew, environment failure) aborts the load. The
  /// callback may be invoked multiple times (once per candidate); a
  /// later successful candidate must fully overwrite any partial state
  /// a failed one left behind.
  using Restorer = std::function<Status(std::string_view payload,
                                        uint64_t sequence)>;

  struct LoadInfo {
    std::string payload;   ///< root chunk body of the loaded generation
    uint64_t sequence = 0; ///< its header sequence number
    std::string file;      ///< which file it came from
    int quarantined = 0;   ///< corrupt generations moved aside on the way
  };

  explicit CheckpointManager(std::string path,
                             CheckpointManagerOptions options = {});

  /// Writes the next generation (retrying transient failures), then
  /// prunes generations beyond the retention window. On success the
  /// sequence number advances; on failure on-disk state is unchanged
  /// except possibly a freshly-pruned tail.
  Status Write(ChunkTag root_tag, std::string_view payload);

  /// Loads the newest generation that passes the file checksum and (if
  /// given) `restore`. Corrupt generations encountered on the way are
  /// quarantined to `<file>.corrupt`. Returns NotFound when no
  /// checkpoint exists at all, DataLoss when generations existed but
  /// every one was corrupt.
  Result<LoadInfo> Load(ChunkTag root_tag, const Restorer& restore = {});

  /// Removes orphaned `.tmp` files belonging to this checkpoint family
  /// (a crash mid-write leaves at most one). Returns how many were
  /// swept. Call at startup, before Load.
  Result<int> SweepOrphans();

  /// Existing generation files, oldest first (sequence, full path).
  /// Legacy mode reports the bare path with its header unread
  /// (sequence 0).
  std::vector<std::pair<uint64_t, std::string>> ListGenerations() const;

  const std::string& path() const { return path_; }
  bool rotated() const { return options_.keep_generations >= 2; }
  uint64_t next_sequence() const { return next_sequence_; }

  /// Lifetime counters, for health reporting and the recovery bench.
  int64_t write_retries() const { return write_retries_; }
  int64_t quarantined_total() const { return quarantined_total_; }

 private:
  std::string GenerationPath(uint64_t sequence) const;
  /// Rotated `path.<seq>` files on disk, oldest first — scanned
  /// regardless of the current keep_generations, so state written by a
  /// previous higher-keep run stays visible after the knob is lowered.
  std::vector<std::pair<uint64_t, std::string>> ListRotatedGenerations()
      const;
  /// The sequence number recorded in `file`'s header, or 0 when the
  /// file is unreadable or not a valid checkpoint (the main Load loop
  /// then classifies the failure properly).
  uint64_t PeekSequence(const std::string& file) const;
  /// Scans existing generations so the next Write continues the
  /// sequence instead of restarting at 1. Idempotent.
  void InitSequenceFromDisk();
  Status Quarantine(const std::string& file);
  void Backoff(int attempt);
  Status Prune();

  std::string path_;
  CheckpointManagerOptions options_;
  FileEnv* env_;
  uint64_t next_sequence_ = 1;
  bool sequence_initialized_ = false;
  int64_t write_retries_ = 0;
  int64_t quarantined_total_ = 0;
  /// The file the last successful Load restored from. Prune never
  /// removes it: after a salvage fell back to an older generation,
  /// rotation (especially with a freshly-lowered keep_generations)
  /// must not delete the only state the run is built on.
  std::string restored_file_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_IO_CHECKPOINT_MANAGER_H_
