// Round-trip (Save/Load) serialization of the library's domain types on
// top of the chunked binary format in io/serialize.h.
//
// Contract: Save* writes one complete chunk; Load* validates the chunk
// tag/length, every structural invariant of the type (shape consistency,
// labels within range, observation coordinates in bounds, dense interner
// ids), and returns an error Status on any violation — a loader never
// CHECK-crashes on malformed bytes and never hands back an object that
// would fail the type's own constructor checks.
//
// Composite checkpoint state (whole-pipeline ValuationCheckpoint,
// StreamingValuationEngine state) lives one layer up in
// core/checkpointing.h; this header covers the reusable building blocks.
#ifndef COMFEDSV_IO_CHECKPOINT_H_
#define COMFEDSV_IO_CHECKPOINT_H_

#include "common/rng.h"
#include "common/status.h"
#include "completion/interner.h"
#include "completion/observations.h"
#include "completion/solver.h"
#include "data/dataset.h"
#include "fl/fedavg.h"
#include "fl/round_record.h"
#include "io/serialize.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

void SaveVector(const Vector& v, BinaryWriter* out);
Status LoadVector(BinaryReader* in, Vector* v);

void SaveMatrix(const Matrix& m, BinaryWriter* out);
Status LoadMatrix(BinaryReader* in, Matrix* m);

void SaveDataset(const Dataset& d, BinaryWriter* out);
Status LoadDataset(BinaryReader* in, Dataset* d);

void SaveRngState(const RngState& s, BinaryWriter* out);
Status LoadRngState(BinaryReader* in, RngState* s);

void SaveRoundRecord(const RoundRecord& r, BinaryWriter* out);
Status LoadRoundRecord(BinaryReader* in, RoundRecord* r);

void SaveTrainingResult(const TrainingResult& t, BinaryWriter* out);
Status LoadTrainingResult(BinaryReader* in, TrainingResult* t);

/// Columns are stored in id order, so reloading by re-interning yields
/// the identical bijection.
void SaveInterner(const CoalitionInterner& interner, BinaryWriter* out);
Status LoadInterner(BinaryReader* in, CoalitionInterner* interner);

/// Both lifecycle phases round-trip: an in-progress set reloads
/// in-progress (recording may continue), a finalized set reloads
/// finalized (the CSR/CSC views are rebuilt from the triplets, which is
/// deterministic, rather than stored).
void SaveObservationSet(const ObservationSet& obs, BinaryWriter* out);
Status LoadObservationSet(BinaryReader* in, ObservationSet* obs);

void SaveFactorPair(const FactorPair& f, BinaryWriter* out);
Status LoadFactorPair(BinaryReader* in, FactorPair* f);

/// Mid-training trainer state (FedAvgTrainer::SaveState/RestoreState).
void SaveTrainerState(const FedAvgTrainerState& s, BinaryWriter* out);
Status LoadTrainerState(BinaryReader* in, FedAvgTrainerState* s);

}  // namespace comfedsv

#endif  // COMFEDSV_IO_CHECKPOINT_H_
