// RoundLog: an append-only, crash-consistent store of RoundRecords.
//
// Valuation over a T-round trajectory normally holds per-round state in
// memory; for long runs the records themselves dominate (every client's
// local model, every round). The round log spills them to disk as
// training streams and serves them back with bounded resident memory:
//
//   * RoundLogWriter appends one self-checksummed frame per record and
//     periodically persists a footer index as an atomic side file
//     (`<path>.idx`, the io/serialize.h container around one
//     kRoundLogIndex chunk), fsynced via the usual tmp+rename path.
//   * RoundLogReader serves records by position through a windowed mmap
//     (a budget-bounded sliding window over the data file), falling back
//     to FileEnv::ReadFileRange when mapping is unavailable — so the
//     fault-injecting environment covers both paths.
//   * A stale or missing index is never fatal: Open() scans forward from
//     the last indexed byte (or from the header) and a torn tail frame —
//     a crash mid-append — is cleanly ignored.
//   * OpenForAppend(keep_rounds) truncates the log to exactly
//     `keep_rounds` frames before continuing, so a run resumed from a
//     round-k checkpoint re-appends rounds k.. and the final file is
//     byte-identical to an uninterrupted run's.
//
// Optional compression (per log, recorded in the data header):
//   * kXorDelta — lossless: local models stored as XOR of their f64 bit
//     patterns against global_before, zero-run-length encoded. Decoding
//     is bit-exact, so valuation from the log is bit-identical.
//   * kQuant16 — lossy: local-model deltas uniformly quantized to u16 on
//     a per-vector [min,max] grid. Valuation drift is bounded by the
//     grid step; bench/roundlog.cc measures ratio-vs-drift.
//
// File layout (all little-endian):
//   data file:  header (24 B): u32 magic "CFRL", u32 version, u32
//               compression, u32 reserved, u64 FNV-1a of the first 16 B.
//               Then frames: u32 round, u32 encoding, u64 payload_len,
//               payload, u64 FNV-1a(frame header + payload).
//   index file: `<path>.idx` — WriteCheckpointFile container, root chunk
//               kRoundLogIndex: u64 indexed data size, u64 count, then
//               (u32 round, u64 offset, u64 length) per frame.
#ifndef COMFEDSV_IO_ROUND_LOG_H_
#define COMFEDSV_IO_ROUND_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fl/round_record.h"
#include "io/file_env.h"

namespace comfedsv {

/// First four bytes of a round-log data file: "CFRL".
inline constexpr uint32_t kRoundLogMagic = 0x4C524643u;
inline constexpr uint32_t kRoundLogVersion = 1;
/// Bytes before the first frame.
inline constexpr uint64_t kRoundLogHeaderSize = 24;

/// How record payloads are encoded on disk. Stable on disk — append,
/// never renumber.
enum class RoundLogCompression : uint32_t {
  /// The plain SaveRoundRecord chunk bytes. Lossless.
  kNone = 0,
  /// Local models XOR'd against global_before bit patterns, zero runs
  /// run-length encoded. Lossless (bit-exact round trip).
  kXorDelta = 1,
  /// Local-model deltas quantized to u16 on a per-vector [min,max]
  /// grid. Lossy; everything else in the record stays exact.
  kQuant16 = 2,
};

struct RoundLogOptions {
  RoundLogCompression compression = RoundLogCompression::kNone;
  /// Persist the footer index every k-th append (and on every Sync()).
  /// Larger values amortize the index write; recovery scans the
  /// unindexed tail either way.
  int index_every = 1;
  /// File system to operate on. nullptr = the real one.
  FileEnv* env = nullptr;
};

struct RoundLogReadOptions {
  /// Serve reads through a windowed mmap; off = always pread
  /// (ReadFileRange).
  bool use_mmap = true;
  /// Resident-memory budget for the mmap window. A frame larger than
  /// the budget gets a window of exactly its size.
  uint64_t window_bytes = 1 << 20;
  /// File system to operate on. nullptr = the real one.
  FileEnv* env = nullptr;
};

/// Appends RoundRecords to a round log. Not thread-safe (one writer per
/// log; the trainer's round loop is sequential).
class RoundLogWriter {
 public:
  /// Creates (truncates) a fresh log at `path`.
  static Result<std::unique_ptr<RoundLogWriter>> Create(
      const std::string& path, RoundLogOptions options = {});

  /// Opens an existing log for appending after exactly `keep_rounds`
  /// frames, truncating any frames beyond (a crash may have appended
  /// rounds the resumed checkpoint never saw; dropping them keeps
  /// replay byte-identical). The truncation happens even when the log
  /// already ends at the boundary, so the io/truncate failpoint is
  /// exercised on every resume. DataLoss when fewer than `keep_rounds`
  /// intact frames exist, FailedPrecondition when the header's
  /// compression disagrees with `options`.
  static Result<std::unique_ptr<RoundLogWriter>> OpenForAppend(
      const std::string& path, int keep_rounds, RoundLogOptions options = {});

  /// Appends one record: frame bytes go through FileEnv::AppendFile and
  /// SyncFile, then the footer index per `index_every`. On failure the
  /// in-memory position is unchanged and the on-disk tail (possibly
  /// torn) is beyond the index — the next OpenForAppend truncates it.
  Status Append(const RoundRecord& record);

  /// fsyncs the data file and persists the footer index for everything
  /// appended so far.
  Status Sync();

  int rounds() const { return static_cast<int>(index_.size()); }
  uint64_t data_size() const { return data_size_; }
  /// Bytes the payloads appended through this writer would occupy under
  /// kNone encoding — the denominator of the compression ratio. Resets
  /// on OpenForAppend (pre-existing frames are not re-measured).
  uint64_t uncompressed_bytes() const { return uncompressed_bytes_; }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    uint32_t round = 0;
    uint64_t offset = 0;
    uint64_t length = 0;  // whole frame, header through checksum
  };

  RoundLogWriter(std::string path, RoundLogOptions options);
  Status WriteIndex();

  std::string path_;
  RoundLogOptions options_;
  FileEnv* env_;
  std::vector<Entry> index_;
  uint64_t data_size_ = kRoundLogHeaderSize;
  uint64_t uncompressed_bytes_ = 0;
  int appends_since_index_ = 0;
  /// A failed append may have left torn frame bytes past data_size_;
  /// the next append truncates them off first.
  bool dirty_tail_ = false;
};

/// Random-access reader over a round log. Records are addressed by
/// position (0-based append order). Not thread-safe; give each thread
/// its own reader (they share the page cache).
class RoundLogReader {
 public:
  /// Opens the log: validates the data header, loads the footer index
  /// when present and intact (a corrupt index is ignored, not fatal —
  /// the data frames are self-checksummed), then scans forward from the
  /// last indexed byte to pick up frames appended since. A torn tail
  /// frame ends the scan cleanly.
  static Result<std::unique_ptr<RoundLogReader>> Open(
      const std::string& path, RoundLogReadOptions options = {});

  /// Number of intact records.
  int rounds() const { return static_cast<int>(index_.size()); }
  RoundLogCompression compression() const { return compression_; }

  /// Decodes record `pos` (0-based append order) into `*out`,
  /// validating the frame checksum. Reads go through the mmap window
  /// when enabled (remapping as the window slides), else ReadFileRange.
  Status Read(int pos, RoundRecord* out);

  /// Observability for tests and the bench.
  int64_t remaps() const { return remaps_; }
  int64_t fallback_reads() const { return fallback_reads_; }
  uint64_t window_resident_bytes() const { return window_.size(); }
  uint64_t data_size() const { return data_size_; }

 private:
  struct Entry {
    uint32_t round = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  RoundLogReader(std::string path, RoundLogReadOptions options);
  /// Returns the frame bytes for `entry`, via the window or pread.
  Result<std::string_view> FrameBytes(const Entry& entry,
                                      std::string* scratch);

  std::string path_;
  RoundLogReadOptions options_;
  FileEnv* env_;
  RoundLogCompression compression_ = RoundLogCompression::kNone;
  std::vector<Entry> index_;
  uint64_t data_size_ = 0;

  MappedRegion window_;
  uint64_t window_offset_ = 0;
  bool mmap_broken_ = false;  // MapRange failed once; stay on pread
  int64_t remaps_ = 0;
  int64_t fallback_reads_ = 0;
};

/// Encodes `record` under `compression` (the frame payload bytes).
/// Exposed for tests and the bench; Append/Read use it internally.
std::string EncodeRoundRecordPayload(const RoundRecord& record,
                                     RoundLogCompression compression);
/// Decodes an EncodeRoundRecordPayload buffer. For kNone and kXorDelta
/// the result is bit-identical to the encoded record.
Status DecodeRoundRecordPayload(std::string_view payload,
                                RoundLogCompression compression,
                                RoundRecord* out);

}  // namespace comfedsv

#endif  // COMFEDSV_IO_ROUND_LOG_H_
