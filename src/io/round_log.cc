#include "io/round_log.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "io/checkpoint.h"
#include "io/serialize.h"

namespace comfedsv {
namespace {

/// Frame header: u32 round, u32 encoding, u64 payload length.
constexpr uint64_t kFrameHeaderSize = 16;
/// Trailing FNV-1a over the frame header + payload.
constexpr uint64_t kFrameTrailerSize = 8;

/// RLE opcodes for the kXorDelta byte stream.
constexpr uint8_t kOpZeroRun = 0x00;
constexpr uint8_t kOpLiteral = 0x01;
/// Zero runs at least this long pay for their 5-byte opcode.
constexpr size_t kMinZeroRun = 8;

void PutU32(std::string* out, uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    out->push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int k = 0; k < 8; ++k) {
    out->push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
  }
}

uint32_t GetU32(std::string_view bytes, size_t at) {
  uint32_t v = 0;
  for (int k = 3; k >= 0; --k) {
    v = (v << 8) | static_cast<uint8_t>(bytes[at + static_cast<size_t>(k)]);
  }
  return v;
}

uint64_t GetU64(std::string_view bytes, size_t at) {
  uint64_t v = 0;
  for (int k = 7; k >= 0; --k) {
    v = (v << 8) | static_cast<uint8_t>(bytes[at + static_cast<size_t>(k)]);
  }
  return v;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string RoundLogHeaderBytes(RoundLogCompression compression) {
  std::string header;
  PutU32(&header, kRoundLogMagic);
  PutU32(&header, kRoundLogVersion);
  PutU32(&header, static_cast<uint32_t>(compression));
  PutU32(&header, 0);  // reserved
  PutU64(&header, Fnv1a64(header));
  return header;
}

Status ParseRoundLogHeader(std::string_view bytes,
                           RoundLogCompression* compression) {
  if (bytes.size() < kRoundLogHeaderSize) {
    return Status::DataLoss("round log truncated inside the header");
  }
  if (GetU32(bytes, 0) != kRoundLogMagic) {
    return Status::DataLoss("round log has wrong magic");
  }
  if (GetU32(bytes, 4) != kRoundLogVersion) {
    return Status::FailedPrecondition("round log format version skew");
  }
  if (GetU64(bytes, 16) != Fnv1a64(bytes.substr(0, 16))) {
    return Status::DataLoss("round log header checksum mismatch");
  }
  const uint32_t mode = GetU32(bytes, 8);
  if (mode > static_cast<uint32_t>(RoundLogCompression::kQuant16)) {
    return Status::DataLoss("round log has unknown compression mode");
  }
  *compression = static_cast<RoundLogCompression>(mode);
  return Status::Ok();
}

std::string BuildFrame(const RoundRecord& record, std::string_view payload,
                       RoundLogCompression enc) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  PutU32(&frame, static_cast<uint32_t>(record.round));
  PutU32(&frame, static_cast<uint32_t>(enc));
  PutU64(&frame, payload.size());
  frame.append(payload);
  PutU64(&frame, Fnv1a64(frame));
  return frame;
}

void SaveIntList(const std::vector<int>& list, BinaryWriter* out) {
  out->U64(list.size());
  for (int v : list) out->I32(v);
}

Status LoadIntList(BinaryReader* in, std::vector<int>* list) {
  uint64_t count = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(4, &count));
  list->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    int32_t v = 0;
    COMFEDSV_RETURN_IF_ERROR(in->I32(&v));
    (*list)[static_cast<size_t>(i)] = v;
  }
  return Status::Ok();
}

/// Shared prelude of the two delta encodings: everything in the record
/// except the local models, with global_before stored exact.
void SavePrelude(const RoundRecord& record, BinaryWriter* out) {
  out->I32(record.round);
  out->F64(record.test_loss_before);
  SaveVector(record.global_before, out);
  SaveIntList(record.selected, out);
  SaveIntList(record.rejected, out);
  SaveIntList(record.dropped, out);
  out->U64(record.local_models.size());
}

Status LoadPrelude(BinaryReader* in, RoundRecord* out, uint64_t* num_models) {
  COMFEDSV_RETURN_IF_ERROR(in->I32(&out->round));
  COMFEDSV_RETURN_IF_ERROR(in->F64(&out->test_loss_before));
  COMFEDSV_RETURN_IF_ERROR(LoadVector(in, &out->global_before));
  COMFEDSV_RETURN_IF_ERROR(LoadIntList(in, &out->selected));
  COMFEDSV_RETURN_IF_ERROR(LoadIntList(in, &out->rejected));
  COMFEDSV_RETURN_IF_ERROR(LoadIntList(in, &out->dropped));
  return in->Count(1, num_models);
}

/// Zero-run-length encodes `bytes`: 0x00 + u32 run for zero runs of at
/// least kMinZeroRun, 0x01 + u32 len + raw bytes otherwise.
std::string RleEncode(std::string_view bytes) {
  std::string out;
  size_t literal_start = 0;
  size_t i = 0;
  auto flush_literal = [&](size_t end) {
    size_t at = literal_start;
    while (at < end) {
      const size_t len = std::min<size_t>(end - at, 0xFFFFFFFFu);
      out.push_back(static_cast<char>(kOpLiteral));
      PutU32(&out, static_cast<uint32_t>(len));
      out.append(bytes.substr(at, len));
      at += len;
    }
  };
  while (i < bytes.size()) {
    if (bytes[i] == '\0') {
      size_t run = 1;
      while (i + run < bytes.size() && bytes[i + run] == '\0') ++run;
      if (run >= kMinZeroRun) {
        flush_literal(i);
        size_t left = run;
        while (left > 0) {
          const size_t n = std::min<size_t>(left, 0xFFFFFFFFu);
          out.push_back(static_cast<char>(kOpZeroRun));
          PutU32(&out, static_cast<uint32_t>(n));
          left -= n;
        }
        literal_start = i + run;
      }
      i += run;
    } else {
      ++i;
    }
  }
  flush_literal(bytes.size());
  return out;
}

Status RleDecode(BinaryReader* in, size_t expected_size, std::string* out) {
  uint64_t rle_len = 0;
  COMFEDSV_RETURN_IF_ERROR(in->Count(1, &rle_len));
  out->clear();
  out->reserve(expected_size);
  uint64_t consumed = 0;
  while (consumed < rle_len) {
    uint8_t op = 0;
    uint32_t n = 0;
    COMFEDSV_RETURN_IF_ERROR(in->U8(&op));
    COMFEDSV_RETURN_IF_ERROR(in->U32(&n));
    consumed += 5;
    if (op == kOpZeroRun) {
      if (out->size() + n > expected_size) {
        return Status::DataLoss("round log RLE stream overruns its vector");
      }
      out->append(n, '\0');
    } else if (op == kOpLiteral) {
      if (out->size() + n > expected_size || consumed + n > rle_len) {
        return Status::DataLoss("round log RLE stream overruns its vector");
      }
      for (uint32_t k = 0; k < n; ++k) {
        uint8_t b = 0;
        COMFEDSV_RETURN_IF_ERROR(in->U8(&b));
        out->push_back(static_cast<char>(b));
      }
      consumed += n;
    } else {
      return Status::DataLoss("round log RLE stream has an unknown opcode");
    }
  }
  if (consumed != rle_len || out->size() != expected_size) {
    return Status::DataLoss("round log RLE stream length mismatch");
  }
  return Status::Ok();
}

std::string EncodeXorDelta(const RoundRecord& record) {
  BinaryWriter out;
  SavePrelude(record, &out);
  const Vector& global = record.global_before;
  for (const Vector& local : record.local_models) {
    out.U64(local.size());
    std::string xored;
    xored.reserve(local.size() * 8);
    for (size_t j = 0; j < local.size(); ++j) {
      const uint64_t g = j < global.size() ? DoubleBits(global[j]) : 0;
      PutU64(&xored, DoubleBits(local[j]) ^ g);
    }
    // Most clients do not move most coordinates much per round, but the
    // payoff here comes from sanitized/unselected updates that equal the
    // global exactly: their XOR stream is all zeros.
    const std::string rle = RleEncode(xored);
    out.U64(rle.size());
    for (char c : rle) out.U8(static_cast<uint8_t>(c));
  }
  return out.buffer();
}

Status DecodeXorDelta(std::string_view payload, RoundRecord* out) {
  BinaryReader in(payload);
  uint64_t num_models = 0;
  COMFEDSV_RETURN_IF_ERROR(LoadPrelude(&in, out, &num_models));
  out->local_models.assign(static_cast<size_t>(num_models), Vector());
  const Vector& global = out->global_before;
  for (uint64_t m = 0; m < num_models; ++m) {
    uint64_t dim = 0;
    COMFEDSV_RETURN_IF_ERROR(in.Count(8, &dim));
    std::string xored;
    COMFEDSV_RETURN_IF_ERROR(
        RleDecode(&in, static_cast<size_t>(dim) * 8, &xored));
    Vector& local = out->local_models[static_cast<size_t>(m)];
    local.Resize(static_cast<size_t>(dim));
    for (uint64_t j = 0; j < dim; ++j) {
      const uint64_t g = j < global.size() ? DoubleBits(global[j]) : 0;
      local[static_cast<size_t>(j)] =
          BitsDouble(GetU64(xored, static_cast<size_t>(j) * 8) ^ g);
    }
  }
  if (in.remaining() != 0) {
    return Status::DataLoss("round log payload has trailing bytes");
  }
  return Status::Ok();
}

std::string EncodeQuant16(const RoundRecord& record) {
  BinaryWriter out;
  SavePrelude(record, &out);
  const Vector& global = record.global_before;
  for (const Vector& local : record.local_models) {
    out.U64(local.size());
    double lo = 0.0, hi = 0.0;
    for (size_t j = 0; j < local.size(); ++j) {
      const double d = local[j] - (j < global.size() ? global[j] : 0.0);
      if (j == 0 || d < lo) lo = d;
      if (j == 0 || d > hi) hi = d;
    }
    out.F64(lo);
    out.F64(hi);
    const double span = hi - lo;
    for (size_t j = 0; j < local.size(); ++j) {
      const double d = local[j] - (j < global.size() ? global[j] : 0.0);
      uint32_t q = 0;
      if (span > 0.0) {
        const double scaled = (d - lo) / span * 65535.0;
        q = static_cast<uint32_t>(
            std::min(65535.0, std::max(0.0, scaled + 0.5)));
      }
      out.U8(static_cast<uint8_t>(q & 0xFF));
      out.U8(static_cast<uint8_t>((q >> 8) & 0xFF));
    }
  }
  return out.buffer();
}

Status DecodeQuant16(std::string_view payload, RoundRecord* out) {
  BinaryReader in(payload);
  uint64_t num_models = 0;
  COMFEDSV_RETURN_IF_ERROR(LoadPrelude(&in, out, &num_models));
  out->local_models.assign(static_cast<size_t>(num_models), Vector());
  const Vector& global = out->global_before;
  for (uint64_t m = 0; m < num_models; ++m) {
    uint64_t dim = 0;
    COMFEDSV_RETURN_IF_ERROR(in.Count(2, &dim));
    double lo = 0.0, hi = 0.0;
    COMFEDSV_RETURN_IF_ERROR(in.F64(&lo));
    COMFEDSV_RETURN_IF_ERROR(in.F64(&hi));
    const double span = hi - lo;
    Vector& local = out->local_models[static_cast<size_t>(m)];
    local.Resize(static_cast<size_t>(dim));
    for (uint64_t j = 0; j < dim; ++j) {
      uint8_t b0 = 0, b1 = 0;
      COMFEDSV_RETURN_IF_ERROR(in.U8(&b0));
      COMFEDSV_RETURN_IF_ERROR(in.U8(&b1));
      const uint32_t q = static_cast<uint32_t>(b0) |
                         (static_cast<uint32_t>(b1) << 8);
      const double d =
          span > 0.0 ? lo + static_cast<double>(q) / 65535.0 * span : lo;
      const size_t idx = static_cast<size_t>(j);
      local[idx] = (idx < global.size() ? global[idx] : 0.0) + d;
    }
  }
  if (in.remaining() != 0) {
    return Status::DataLoss("round log payload has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeRoundRecordPayload(const RoundRecord& record,
                                     RoundLogCompression compression) {
  switch (compression) {
    case RoundLogCompression::kNone: {
      BinaryWriter out;
      SaveRoundRecord(record, &out);
      return out.buffer();
    }
    case RoundLogCompression::kXorDelta:
      return EncodeXorDelta(record);
    case RoundLogCompression::kQuant16:
      return EncodeQuant16(record);
  }
  COMFEDSV_CHECK(false);
  return {};
}

Status DecodeRoundRecordPayload(std::string_view payload,
                                RoundLogCompression compression,
                                RoundRecord* out) {
  *out = RoundRecord();
  switch (compression) {
    case RoundLogCompression::kNone: {
      BinaryReader in(payload);
      COMFEDSV_RETURN_IF_ERROR(LoadRoundRecord(&in, out));
      if (in.remaining() != 0) {
        return Status::DataLoss("round log payload has trailing bytes");
      }
      return Status::Ok();
    }
    case RoundLogCompression::kXorDelta:
      return DecodeXorDelta(payload, out);
    case RoundLogCompression::kQuant16:
      return DecodeQuant16(payload, out);
  }
  return Status::DataLoss("round log payload has unknown encoding");
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

RoundLogWriter::RoundLogWriter(std::string path, RoundLogOptions options)
    : path_(std::move(path)), options_(std::move(options)) {
  COMFEDSV_CHECK_GE(options_.index_every, 1);
  env_ = options_.env != nullptr ? options_.env : FileEnv::Real();
}

Result<std::unique_ptr<RoundLogWriter>> RoundLogWriter::Create(
    const std::string& path, RoundLogOptions options) {
  std::unique_ptr<RoundLogWriter> writer(
      new RoundLogWriter(path, std::move(options)));
  COMFEDSV_RETURN_IF_ERROR(writer->env_->WriteFile(
      path, RoundLogHeaderBytes(writer->options_.compression)));
  COMFEDSV_RETURN_IF_ERROR(writer->env_->SyncFile(path));
  COMFEDSV_RETURN_IF_ERROR(writer->WriteIndex());
  return writer;
}

Result<std::unique_ptr<RoundLogWriter>> RoundLogWriter::OpenForAppend(
    const std::string& path, int keep_rounds, RoundLogOptions options) {
  COMFEDSV_CHECK_GE(keep_rounds, 0);
  std::unique_ptr<RoundLogWriter> writer(
      new RoundLogWriter(path, std::move(options)));
  FileEnv* env = writer->env_;

  Result<std::string> header =
      env->ReadFileRange(path, 0, kRoundLogHeaderSize);
  if (!header.ok()) return header.status();
  RoundLogCompression stored = RoundLogCompression::kNone;
  COMFEDSV_RETURN_IF_ERROR(ParseRoundLogHeader(header.value(), &stored));
  if (stored != writer->options_.compression) {
    return Status::FailedPrecondition(
        "round log was written with a different compression mode");
  }

  // Walk the frames by checksum, not by index — the index may be stale
  // or torn, the frames are the truth.
  Result<uint64_t> file_size = env->FileSize(path);
  if (!file_size.ok()) return file_size.status();
  uint64_t offset = kRoundLogHeaderSize;
  while (static_cast<int>(writer->index_.size()) < keep_rounds) {
    Result<std::string> head =
        env->ReadFileRange(path, offset, kFrameHeaderSize);
    if (!head.ok()) return head.status();
    if (head.value().size() < kFrameHeaderSize) break;
    const uint64_t payload_len = GetU64(head.value(), 8);
    const uint64_t frame_len =
        kFrameHeaderSize + payload_len + kFrameTrailerSize;
    if (offset + frame_len > file_size.value()) break;
    Result<std::string> rest = env->ReadFileRange(
        path, offset + kFrameHeaderSize, payload_len + kFrameTrailerSize);
    if (!rest.ok()) return rest.status();
    if (rest.value().size() < payload_len + kFrameTrailerSize) break;
    const uint64_t want = GetU64(rest.value(), payload_len);
    const uint64_t got =
        Fnv1a64(std::string_view(rest.value()).substr(0, payload_len),
                Fnv1a64(head.value()));
    if (want != got) break;
    Entry entry;
    entry.round = GetU32(head.value(), 0);
    entry.offset = offset;
    entry.length = frame_len;
    writer->index_.push_back(entry);
    offset += frame_len;
  }
  if (static_cast<int>(writer->index_.size()) < keep_rounds) {
    return Status::DataLoss(
        "round log at " + path + " has only " +
        std::to_string(writer->index_.size()) + " intact frames, needed " +
        std::to_string(keep_rounds));
  }

  // Drop everything past the resume boundary — frames a crashed run
  // appended beyond its last durable checkpoint, or a torn tail. Done
  // unconditionally so resume-after-clean-shutdown exercises the same
  // path as resume-after-crash.
  COMFEDSV_RETURN_IF_ERROR(env->Truncate(path, offset));
  COMFEDSV_RETURN_IF_ERROR(env->SyncFile(path));
  writer->data_size_ = offset;
  COMFEDSV_RETURN_IF_ERROR(writer->WriteIndex());
  return writer;
}

Status RoundLogWriter::Append(const RoundRecord& record) {
  if (dirty_tail_) {
    // A failed append may have left a torn frame; cut it off before
    // appending again so the frame stream stays parseable.
    COMFEDSV_RETURN_IF_ERROR(env_->Truncate(path_, data_size_));
    dirty_tail_ = false;
  }
  const std::string payload =
      EncodeRoundRecordPayload(record, options_.compression);
  const std::string frame =
      BuildFrame(record, payload, options_.compression);

  Status appended = env_->AppendFile(path_, frame);
  if (!appended.ok()) {
    dirty_tail_ = true;
    return appended;
  }
  Status synced = env_->SyncFile(path_);
  if (!synced.ok()) {
    dirty_tail_ = true;
    return synced;
  }

  Entry entry;
  entry.round = static_cast<uint32_t>(record.round);
  entry.offset = data_size_;
  entry.length = frame.size();
  index_.push_back(entry);
  data_size_ += frame.size();
  uncompressed_bytes_ +=
      options_.compression == RoundLogCompression::kNone
          ? payload.size()
          : EncodeRoundRecordPayload(record, RoundLogCompression::kNone)
                .size();

  if (++appends_since_index_ >= options_.index_every) {
    return WriteIndex();
  }
  return Status::Ok();
}

Status RoundLogWriter::Sync() {
  if (dirty_tail_) {
    COMFEDSV_RETURN_IF_ERROR(env_->Truncate(path_, data_size_));
    dirty_tail_ = false;
  }
  COMFEDSV_RETURN_IF_ERROR(env_->SyncFile(path_));
  return WriteIndex();
}

Status RoundLogWriter::WriteIndex() {
  BinaryWriter out;
  out.U64(data_size_);
  out.U64(index_.size());
  for (const Entry& entry : index_) {
    out.U32(entry.round);
    out.U64(entry.offset);
    out.U64(entry.length);
  }
  Status written =
      WriteCheckpointFile(path_ + ".idx", ChunkTag::kRoundLogIndex,
                          out.buffer(), index_.size(), env_);
  if (written.ok()) appends_since_index_ = 0;
  return written;
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

RoundLogReader::RoundLogReader(std::string path, RoundLogReadOptions options)
    : path_(std::move(path)), options_(std::move(options)) {
  env_ = options_.env != nullptr ? options_.env : FileEnv::Real();
}

Result<std::unique_ptr<RoundLogReader>> RoundLogReader::Open(
    const std::string& path, RoundLogReadOptions options) {
  std::unique_ptr<RoundLogReader> reader(
      new RoundLogReader(path, std::move(options)));
  FileEnv* env = reader->env_;

  Result<uint64_t> file_size = env->FileSize(path);
  if (!file_size.ok()) return file_size.status();
  reader->data_size_ = file_size.value();
  Result<std::string> header =
      env->ReadFileRange(path, 0, kRoundLogHeaderSize);
  if (!header.ok()) return header.status();
  COMFEDSV_RETURN_IF_ERROR(
      ParseRoundLogHeader(header.value(), &reader->compression_));

  // The footer index is an accelerator, not the truth: a missing or
  // corrupt one falls back to a full scan, a stale one is extended by
  // scanning the unindexed tail.
  uint64_t scan_from = kRoundLogHeaderSize;
  Result<std::string> idx =
      ReadCheckpointFile(path + ".idx", ChunkTag::kRoundLogIndex, env);
  if (idx.ok()) {
    BinaryReader in(idx.value());
    uint64_t indexed_size = 0;
    uint64_t count = 0;
    bool valid = in.U64(&indexed_size).ok() && in.Count(20, &count).ok() &&
                 indexed_size <= reader->data_size_;
    uint64_t expect_offset = kRoundLogHeaderSize;
    std::vector<Entry> entries;
    for (uint64_t i = 0; valid && i < count; ++i) {
      Entry entry;
      valid = in.U32(&entry.round).ok() && in.U64(&entry.offset).ok() &&
              in.U64(&entry.length).ok() && entry.offset == expect_offset &&
              entry.length >= kFrameHeaderSize + kFrameTrailerSize &&
              entry.offset + entry.length <= indexed_size;
      if (valid) {
        expect_offset = entry.offset + entry.length;
        entries.push_back(entry);
      }
    }
    if (valid) {
      reader->index_ = std::move(entries);
      scan_from = expect_offset;
    }
  } else if (idx.status().code() == StatusCode::kUnavailable) {
    // A transient environment failure is not "no index"; surface it
    // rather than silently rescanning the whole log.
    return idx.status();
  }

  // Scan the unindexed tail frame by frame; stop at the first torn or
  // corrupt frame (a crash mid-append).
  uint64_t offset = scan_from;
  while (offset + kFrameHeaderSize + kFrameTrailerSize <=
         reader->data_size_) {
    Result<std::string> head =
        env->ReadFileRange(path, offset, kFrameHeaderSize);
    if (!head.ok()) return head.status();
    if (head.value().size() < kFrameHeaderSize) break;
    const uint64_t payload_len = GetU64(head.value(), 8);
    const uint64_t frame_len =
        kFrameHeaderSize + payload_len + kFrameTrailerSize;
    if (offset + frame_len > reader->data_size_) break;
    Result<std::string> rest = env->ReadFileRange(
        path, offset + kFrameHeaderSize, payload_len + kFrameTrailerSize);
    if (!rest.ok()) return rest.status();
    if (rest.value().size() < payload_len + kFrameTrailerSize) break;
    const uint64_t want = GetU64(rest.value(), payload_len);
    const uint64_t got =
        Fnv1a64(std::string_view(rest.value()).substr(0, payload_len),
                Fnv1a64(head.value()));
    if (want != got) break;
    Entry entry;
    entry.round = GetU32(head.value(), 0);
    entry.offset = offset;
    entry.length = frame_len;
    reader->index_.push_back(entry);
    offset += frame_len;
  }
  return reader;
}

Result<std::string_view> RoundLogReader::FrameBytes(const Entry& entry,
                                                    std::string* scratch) {
  if (options_.use_mmap && !mmap_broken_) {
    const bool covered =
        window_.data() != nullptr && entry.offset >= window_offset_ &&
        entry.offset + entry.length <= window_offset_ + window_.size();
    if (!covered) {
      const uint64_t len = std::min<uint64_t>(
          std::max<uint64_t>(options_.window_bytes, entry.length),
          data_size_ - entry.offset);
      Result<MappedRegion> mapped =
          env_->MapRange(path_, entry.offset, len);
      if (mapped.ok()) {
        window_ = std::move(mapped).value();
        window_offset_ = entry.offset;
        ++remaps_;
      } else if (mapped.status().code() == StatusCode::kNotImplemented) {
        mmap_broken_ = true;
      }
      // Any mapping failure falls through to the pread path below for
      // this read; unless mapping is structurally unsupported we try
      // again next time the window slides.
    }
    if (window_.data() != nullptr && entry.offset >= window_offset_ &&
        entry.offset + entry.length <= window_offset_ + window_.size()) {
      return window_.view().substr(
          static_cast<size_t>(entry.offset - window_offset_),
          static_cast<size_t>(entry.length));
    }
  }
  Result<std::string> bytes =
      env_->ReadFileRange(path_, entry.offset, entry.length);
  if (!bytes.ok()) return bytes.status();
  if (bytes.value().size() < entry.length) {
    return Status::DataLoss("round log frame truncated under the reader");
  }
  ++fallback_reads_;
  *scratch = std::move(bytes).value();
  return std::string_view(*scratch);
}

Status RoundLogReader::Read(int pos, RoundRecord* out) {
  if (pos < 0 || pos >= rounds()) {
    return Status::OutOfRange("round log position " + std::to_string(pos) +
                              " not in [0, " + std::to_string(rounds()) +
                              ")");
  }
  const Entry& entry = index_[static_cast<size_t>(pos)];
  std::string scratch;
  Result<std::string_view> frame = FrameBytes(entry, &scratch);
  if (!frame.ok()) return frame.status();
  const std::string_view bytes = frame.value();
  const uint64_t payload_len = GetU64(bytes, 8);
  if (kFrameHeaderSize + payload_len + kFrameTrailerSize != bytes.size()) {
    return Status::DataLoss("round log frame length mismatch");
  }
  const uint64_t want = GetU64(bytes, kFrameHeaderSize + payload_len);
  const uint64_t got =
      Fnv1a64(bytes.substr(0, kFrameHeaderSize + payload_len));
  if (want != got) {
    return Status::DataLoss("round log frame checksum mismatch");
  }
  const uint32_t enc = GetU32(bytes, 4);
  if (enc > static_cast<uint32_t>(RoundLogCompression::kQuant16)) {
    return Status::DataLoss("round log frame has unknown encoding");
  }
  return DecodeRoundRecordPayload(
      bytes.substr(kFrameHeaderSize, payload_len),
      static_cast<RoundLogCompression>(enc), out);
}

}  // namespace comfedsv
