#include "io/file_env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/failpoint.h"

namespace comfedsv {
namespace {

namespace fs = std::filesystem;

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

/// fsync an already-open descriptor-by-path. POSIX only; on other
/// platforms durability is best-effort and this returns Ok.
Status FsyncPath(const std::string& path, bool directory) {
#ifndef _WIN32
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::Unavailable(
        ErrnoMessage(directory ? "open directory" : "open", path));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::Unavailable(ErrnoMessage("fsync", path));
  }
#else
  (void)path;
  (void)directory;
#endif
  return Status::Ok();
}

}  // namespace

Status FileEnv::WriteFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return Status::Unavailable("short write to '" + path + "'");
  }
  out.close();
  if (!out) {
    return Status::Unavailable("close failed for '" + path + "'");
  }
  return Status::Ok();
}

Status FileEnv::SyncFile(const std::string& path) {
  return FsyncPath(path, /*directory=*/false);
}

Status FileEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::Unavailable("rename '" + from + "' -> '" + to +
                               "' failed: " + ec.message());
  }
  return Status::Ok();
}

Status FileEnv::SyncDir(const std::string& dir) {
  return FsyncPath(dir, /*directory=*/true);
}

Result<std::string> FileEnv::ReadFile(const std::string& path) {
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    return Status::NotFound("no such file: '" + path + "'");
  }
  if (st.type() == fs::file_type::directory) {
    return Status::InvalidArgument("'" + path + "' is a directory");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open '" + path + "' for reading");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Unavailable("read failed for '" + path + "'");
  }
  return data;
}

Status FileEnv::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file is not an error
  if (ec) {
    return Status::Unavailable("remove '" + path +
                               "' failed: " + ec.message());
  }
  return Status::Ok();
}

Result<std::vector<std::string>> FileEnv::ListDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::NotFound("no such directory: '" + dir + "'");
  }
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) {
    return Status::Unavailable("listing '" + dir +
                               "' failed: " + ec.message());
  }
  return names;
}

bool FileEnv::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

FileEnv* FileEnv::Real() {
  static FileEnv* env = new FileEnv();
  return env;
}

namespace failpoints {

const std::vector<std::string>& All() {
  static const std::vector<std::string>* all = new std::vector<std::string>{
      kWriteFile, kSyncFile, kRename, kSyncDir, kReadFile, kRemove, kListDir};
  return *all;
}

}  // namespace failpoints

namespace {

/// Truncate `path` to its first `n` bytes (clamped to current size) —
/// the on-disk effect of a torn write or post-crash data loss.
void TruncateTo(FileEnv* env, const std::string& path, int64_t n) {
  auto data = env->ReadFile(path);
  if (!data.ok()) return;
  std::string& bytes = data.value();
  if (n < 0) n = 0;
  if (static_cast<size_t>(n) < bytes.size()) {
    bytes.resize(static_cast<size_t>(n));
  }
  (void)env->WriteFile(path, bytes);
}

}  // namespace

Status FaultInjectingFileEnv::Check(const char* name,
                                    std::string_view write_data,
                                    const std::string& write_path) {
  if (crashed_) {
    return Status::Unavailable(std::string("crashed: ") + name +
                               " refused");
  }
  auto fire = FailpointRegistry::Global().Hit(name);
  if (!fire.has_value()) return Status::Ok();
  switch (static_cast<FaultAction>(fire->action)) {
    case FaultAction::kError:
      return Status::Unavailable(std::string("injected I/O error at ") +
                                 name);
    case FaultAction::kEnospc:
    case FaultAction::kShortWrite:
      if (!write_path.empty()) {
        // Leave the torn prefix behind, like a real partial write.
        (void)base_->WriteFile(
            write_path,
            write_data.substr(
                0, std::min<size_t>(write_data.size(),
                                    static_cast<size_t>(
                                        std::max<int64_t>(0, fire->arg)))));
      }
      return Status::Unavailable(
          static_cast<FaultAction>(fire->action) == FaultAction::kEnospc
              ? std::string("injected ENOSPC at ") + name
              : std::string("injected short write at ") + name);
    case FaultAction::kTornRename:
      // Handled by Rename() itself — here it degrades to an error.
      return Status::Unavailable(std::string("injected torn rename at ") +
                                 name);
    case FaultAction::kCrash:
      crashed_ = true;
      if (!write_path.empty()) {
        (void)base_->WriteFile(
            write_path,
            write_data.substr(
                0, std::min<size_t>(write_data.size(),
                                    static_cast<size_t>(
                                        std::max<int64_t>(0, fire->arg)))));
      }
      return Status::Unavailable(std::string("injected crash at ") + name);
  }
  return Status::Unavailable(std::string("injected fault at ") + name);
}

Status FaultInjectingFileEnv::WriteFile(const std::string& path,
                                        std::string_view data) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kWriteFile, data, path));
  return base_->WriteFile(path, data);
}

Status FaultInjectingFileEnv::SyncFile(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kSyncFile, {}, {}));
  return base_->SyncFile(path);
}

Status FaultInjectingFileEnv::Rename(const std::string& from,
                                     const std::string& to) {
  if (crashed_) {
    return Status::Unavailable("crashed: io/rename refused");
  }
  auto fire = FailpointRegistry::Global().Hit(failpoints::kRename);
  if (fire.has_value()) {
    switch (static_cast<FaultAction>(fire->action)) {
      case FaultAction::kTornRename: {
        // The rename lands but the renamed file's tail does not: the
        // directory entry was durable before the data blocks were.
        COMFEDSV_RETURN_IF_ERROR(base_->Rename(from, to));
        TruncateTo(base_, to, fire->arg);
        return Status::Ok();
      }
      case FaultAction::kCrash:
        crashed_ = true;
        return Status::Unavailable("injected crash at io/rename");
      default:
        return Status::Unavailable("injected I/O error at io/rename");
    }
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFileEnv::SyncDir(const std::string& dir) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kSyncDir, {}, {}));
  return base_->SyncDir(dir);
}

Result<std::string> FaultInjectingFileEnv::ReadFile(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kReadFile, {}, {}));
  return base_->ReadFile(path);
}

Status FaultInjectingFileEnv::Remove(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kRemove, {}, {}));
  return base_->Remove(path);
}

Result<std::vector<std::string>> FaultInjectingFileEnv::ListDir(
    const std::string& dir) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kListDir, {}, {}));
  return base_->ListDir(dir);
}

bool FaultInjectingFileEnv::Exists(const std::string& path) {
  return base_->Exists(path);
}

}  // namespace comfedsv
