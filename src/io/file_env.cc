#include "io/file_env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "common/failpoint.h"

namespace comfedsv {
namespace {

namespace fs = std::filesystem;

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

/// fsync an already-open descriptor-by-path. POSIX only; on other
/// platforms durability is best-effort and this returns Ok.
Status FsyncPath(const std::string& path, bool directory) {
#ifndef _WIN32
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::Unavailable(
        ErrnoMessage(directory ? "open directory" : "open", path));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::Unavailable(ErrnoMessage("fsync", path));
  }
#else
  (void)path;
  (void)directory;
#endif
  return Status::Ok();
}

}  // namespace

Status FileEnv::WriteFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return Status::Unavailable("short write to '" + path + "'");
  }
  out.close();
  if (!out) {
    return Status::Unavailable("close failed for '" + path + "'");
  }
  return Status::Ok();
}

Status FileEnv::SyncFile(const std::string& path) {
  return FsyncPath(path, /*directory=*/false);
}

Status FileEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::Unavailable("rename '" + from + "' -> '" + to +
                               "' failed: " + ec.message());
  }
  return Status::Ok();
}

Status FileEnv::SyncDir(const std::string& dir) {
  return FsyncPath(dir, /*directory=*/true);
}

Result<std::string> FileEnv::ReadFile(const std::string& path) {
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    return Status::NotFound("no such file: '" + path + "'");
  }
  if (st.type() == fs::file_type::directory) {
    return Status::InvalidArgument("'" + path + "' is a directory");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open '" + path + "' for reading");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Unavailable("read failed for '" + path + "'");
  }
  return data;
}

Status FileEnv::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file is not an error
  if (ec) {
    return Status::Unavailable("remove '" + path +
                               "' failed: " + ec.message());
  }
  return Status::Ok();
}

Result<std::vector<std::string>> FileEnv::ListDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::NotFound("no such directory: '" + dir + "'");
  }
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) {
    return Status::Unavailable("listing '" + dir +
                               "' failed: " + ec.message());
  }
  return names;
}

bool FileEnv::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

Status FileEnv::AppendFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Unavailable("cannot open '" + path + "' for append");
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return Status::Unavailable("short append to '" + path + "'");
  }
  out.close();
  if (!out) {
    return Status::Unavailable("close failed for '" + path + "'");
  }
  return Status::Ok();
}

Result<std::string> FileEnv::ReadFileRange(const std::string& path,
                                           uint64_t offset, uint64_t length) {
  Result<uint64_t> size = FileSize(path);
  if (!size.ok()) return size.status();
  if (offset >= size.value()) return std::string();
  const uint64_t avail = std::min<uint64_t>(length, size.value() - offset);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Unavailable("cannot open '" + path + "' for reading");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string data(static_cast<size_t>(avail), '\0');
  in.read(data.data(), static_cast<std::streamsize>(avail));
  if (in.gcount() != static_cast<std::streamsize>(avail) || in.bad()) {
    return Status::Unavailable("range read failed for '" + path + "'");
  }
  return data;
}

Result<uint64_t> FileEnv::FileSize(const std::string& path) {
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    return Status::NotFound("no such file: '" + path + "'");
  }
  if (st.type() == fs::file_type::directory) {
    return Status::InvalidArgument("'" + path + "' is a directory");
  }
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::Unavailable("stat '" + path + "' failed: " + ec.message());
  }
  return static_cast<uint64_t>(size);
}

Status FileEnv::Truncate(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, static_cast<uintmax_t>(size), ec);
  if (ec) {
    return Status::Unavailable("truncate '" + path +
                               "' failed: " + ec.message());
  }
  return Status::Ok();
}

Result<MappedRegion> FileEnv::MapRange(const std::string& path,
                                       uint64_t offset, uint64_t length) {
  Result<uint64_t> size = FileSize(path);
  if (!size.ok()) return size.status();
  if (offset >= size.value()) return MappedRegion();
  const uint64_t avail = std::min<uint64_t>(length, size.value() - offset);
  if (avail == 0) return MappedRegion();
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Unavailable(ErrnoMessage("open", path));
  }
  // mmap offsets must be page-aligned; map from the aligned floor and
  // hand out a pointer adjusted by the slack.
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t aligned = offset - offset % page;
  const uint64_t slack = offset - aligned;
  const size_t map_len = static_cast<size_t>(avail + slack);
  void* base = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd,
                      static_cast<off_t>(aligned));
  const int saved_errno = errno;
  ::close(fd);
  if (base == MAP_FAILED) {
    errno = saved_errno;
    return Status::Unavailable(ErrnoMessage("mmap", path));
  }
  return MappedRegion(static_cast<const char*>(base) + slack,
                      static_cast<size_t>(avail),
                      [base, map_len] { ::munmap(base, map_len); });
#else
  // No mmap on this platform: emulate with a heap copy owned by the
  // unmap closure, so callers keep one code path.
  Result<std::string> bytes = ReadFileRange(path, offset, avail);
  if (!bytes.ok()) return bytes.status();
  auto* owned = new std::string(std::move(bytes).value());
  return MappedRegion(owned->data(), owned->size(), [owned] { delete owned; });
#endif
}

FileEnv* FileEnv::Real() {
  static FileEnv* env = new FileEnv();
  return env;
}

namespace failpoints {

const std::vector<std::string>& All() {
  static const std::vector<std::string>* all = new std::vector<std::string>{
      kWriteFile, kSyncFile, kRename,   kSyncDir, kReadFile, kRemove,
      kListDir,   kAppendFile, kReadRange, kTruncate, kMmap};
  return *all;
}

}  // namespace failpoints

namespace {

/// Truncate `path` to its first `n` bytes (clamped to current size) —
/// the on-disk effect of a torn write or post-crash data loss.
void TruncateTo(FileEnv* env, const std::string& path, int64_t n) {
  auto data = env->ReadFile(path);
  if (!data.ok()) return;
  std::string& bytes = data.value();
  if (n < 0) n = 0;
  if (static_cast<size_t>(n) < bytes.size()) {
    bytes.resize(static_cast<size_t>(n));
  }
  (void)env->WriteFile(path, bytes);
}

}  // namespace

Status FaultInjectingFileEnv::Check(const char* name,
                                    std::string_view write_data,
                                    const std::string& write_path) {
  if (crashed_) {
    return Status::Unavailable(std::string("crashed: ") + name +
                               " refused");
  }
  auto fire = FailpointRegistry::Global().Hit(name);
  if (!fire.has_value()) return Status::Ok();
  switch (static_cast<FaultAction>(fire->action)) {
    case FaultAction::kError:
      return Status::Unavailable(std::string("injected I/O error at ") +
                                 name);
    case FaultAction::kEnospc:
    case FaultAction::kShortWrite:
      if (!write_path.empty()) {
        // Leave the torn prefix behind, like a real partial write.
        (void)base_->WriteFile(
            write_path,
            write_data.substr(
                0, std::min<size_t>(write_data.size(),
                                    static_cast<size_t>(
                                        std::max<int64_t>(0, fire->arg)))));
      }
      return Status::Unavailable(
          static_cast<FaultAction>(fire->action) == FaultAction::kEnospc
              ? std::string("injected ENOSPC at ") + name
              : std::string("injected short write at ") + name);
    case FaultAction::kTornRename:
      // Handled by Rename() itself — here it degrades to an error.
      return Status::Unavailable(std::string("injected torn rename at ") +
                                 name);
    case FaultAction::kCrash:
      crashed_ = true;
      if (!write_path.empty()) {
        (void)base_->WriteFile(
            write_path,
            write_data.substr(
                0, std::min<size_t>(write_data.size(),
                                    static_cast<size_t>(
                                        std::max<int64_t>(0, fire->arg)))));
      }
      return Status::Unavailable(std::string("injected crash at ") + name);
  }
  return Status::Unavailable(std::string("injected fault at ") + name);
}

Status FaultInjectingFileEnv::WriteFile(const std::string& path,
                                        std::string_view data) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kWriteFile, data, path));
  return base_->WriteFile(path, data);
}

Status FaultInjectingFileEnv::SyncFile(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kSyncFile, {}, {}));
  return base_->SyncFile(path);
}

Status FaultInjectingFileEnv::Rename(const std::string& from,
                                     const std::string& to) {
  if (crashed_) {
    return Status::Unavailable("crashed: io/rename refused");
  }
  auto fire = FailpointRegistry::Global().Hit(failpoints::kRename);
  if (fire.has_value()) {
    switch (static_cast<FaultAction>(fire->action)) {
      case FaultAction::kTornRename: {
        // The rename lands but the renamed file's tail does not: the
        // directory entry was durable before the data blocks were.
        COMFEDSV_RETURN_IF_ERROR(base_->Rename(from, to));
        TruncateTo(base_, to, fire->arg);
        return Status::Ok();
      }
      case FaultAction::kCrash:
        crashed_ = true;
        return Status::Unavailable("injected crash at io/rename");
      default:
        return Status::Unavailable("injected I/O error at io/rename");
    }
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFileEnv::SyncDir(const std::string& dir) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kSyncDir, {}, {}));
  return base_->SyncDir(dir);
}

Result<std::string> FaultInjectingFileEnv::ReadFile(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kReadFile, {}, {}));
  return base_->ReadFile(path);
}

Status FaultInjectingFileEnv::Remove(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kRemove, {}, {}));
  return base_->Remove(path);
}

Result<std::vector<std::string>> FaultInjectingFileEnv::ListDir(
    const std::string& dir) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kListDir, {}, {}));
  return base_->ListDir(dir);
}

bool FaultInjectingFileEnv::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectingFileEnv::AppendFile(const std::string& path,
                                         std::string_view data) {
  // Check()'s torn-prefix helper overwrites the whole file, which is
  // wrong for append — a torn append leaves the old bytes plus a prefix
  // of the new ones. Handle the write-shaped actions inline.
  if (crashed_) {
    return Status::Unavailable("crashed: io/append_file refused");
  }
  auto fire = FailpointRegistry::Global().Hit(failpoints::kAppendFile);
  if (fire.has_value()) {
    const auto action = static_cast<FaultAction>(fire->action);
    if (action == FaultAction::kCrash) crashed_ = true;
    if (action == FaultAction::kEnospc || action == FaultAction::kShortWrite ||
        action == FaultAction::kCrash) {
      (void)base_->AppendFile(
          path, data.substr(0, std::min<size_t>(
                                   data.size(),
                                   static_cast<size_t>(
                                       std::max<int64_t>(0, fire->arg)))));
    }
    return Status::Unavailable(
        std::string("injected fault at io/append_file"));
  }
  return base_->AppendFile(path, data);
}

Result<std::string> FaultInjectingFileEnv::ReadFileRange(
    const std::string& path, uint64_t offset, uint64_t length) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kReadRange, {}, {}));
  return base_->ReadFileRange(path, offset, length);
}

Result<uint64_t> FaultInjectingFileEnv::FileSize(const std::string& path) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kReadRange, {}, {}));
  return base_->FileSize(path);
}

Status FaultInjectingFileEnv::Truncate(const std::string& path,
                                       uint64_t size) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kTruncate, {}, {}));
  return base_->Truncate(path, size);
}

Result<MappedRegion> FaultInjectingFileEnv::MapRange(const std::string& path,
                                                     uint64_t offset,
                                                     uint64_t length) {
  COMFEDSV_RETURN_IF_ERROR(Check(failpoints::kMmap, {}, {}));
  return base_->MapRange(path, offset, length);
}

}  // namespace comfedsv
