// Model interface.
//
// Every model exposes its parameters as one flat Vector so the federated
// substrate can average, perturb, and evaluate parameters without knowing
// the architecture. Gradients are analytic; tests validate them against
// finite differences (models/gradient_check.h).
//
// BatchLoss contract: given B parameter vectors stacked as the rows of a
// Matrix, BatchLoss fills out[i] with exactly the double Loss(row i,
// data) would return — bit-identical, not merely close. Overrides may
// reorder *which* (sample, batch-member) pair is visited when, and may
// fan out over an ExecutionContext, but each member's loss must keep the
// sequential accumulation chain of Loss (samples in ascending order, one
// chain per member), so the output never depends on batch composition or
// thread count. This is what lets the coalition-utility engine batch
// thousands of coalition evaluations per pass over the test set while
// valuation outputs stay reproducible (tests/models_batch_loss_test.cc
// enforces the equivalence).
#ifndef COMFEDSV_MODELS_MODEL_H_
#define COMFEDSV_MODELS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comfedsv {

/// A differentiable classifier over flat parameter vectors.
class Model {
 public:
  virtual ~Model() = default;

  /// Length of the flat parameter vector.
  virtual size_t num_params() const = 0;

  /// Input dimension this model expects.
  virtual size_t input_dim() const = 0;

  /// Number of classes.
  virtual int num_classes() const = 0;

  /// Short architecture name for logs and reports.
  virtual std::string name() const = 0;

  /// Mean loss over `data` (plus any built-in L2 regularizer).
  virtual double Loss(const Vector& params, const Dataset& data) const = 0;

  /// Losses of many parameter vectors at once: row i of `param_rows` is
  /// one flat parameter vector, and `out` (resized to param_rows.rows())
  /// receives out[i] == Loss(row i, data) bit for bit (see the contract
  /// at the top of this header). The default implementation loops Loss,
  /// parallelized over rows via `ctx`; LogisticRegression and Mlp
  /// override it with blocked kernels that amortize the test-set
  /// traversal across the whole batch.
  virtual void BatchLoss(const Matrix& param_rows, const Dataset& data,
                         std::vector<double>* out,
                         ExecutionContext* ctx = nullptr) const;

  /// Mean loss and its gradient; `grad` is resized and overwritten.
  virtual double LossAndGradient(const Vector& params, const Dataset& data,
                                 Vector* grad) const = 0;

  /// Predicted class for a single feature row `x` of length input_dim().
  virtual int Predict(const Vector& params, const double* x) const = 0;

  /// Fraction of `data` classified correctly.
  double Accuracy(const Vector& params, const Dataset& data) const;

  /// Fills `params` with a small random initialization (N(0, scale^2)
  /// by default). Virtual so fixture models can substitute a
  /// transcendental-free init: the default draws through Box–Muller
  /// (libm log/sin/cos), whose last-ulp behavior is the one toolchain-
  /// dependent element of an otherwise bit-stable pipeline (see
  /// tests/scenario_golden_test.cc).
  virtual void InitializeParams(Vector* params, Rng* rng,
                                double scale = 0.05) const;

  /// Mixes everything that determines this model's loss surface into a
  /// checkpoint-compatibility fingerprint (common/fingerprint.h): the
  /// base contribution is (name, num_params, input_dim, num_classes);
  /// concrete models must additionally mix hyperparameters that change
  /// losses without changing those shapes (e.g. L2 penalties), so a
  /// checkpointed run can never silently resume under a different
  /// model.
  virtual void MixFingerprint(uint64_t* hash) const;
};

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_MODEL_H_
