// Model interface.
//
// Every model exposes its parameters as one flat Vector so the federated
// substrate can average, perturb, and evaluate parameters without knowing
// the architecture. Gradients are analytic; tests validate them against
// finite differences (models/gradient_check.h).
#ifndef COMFEDSV_MODELS_MODEL_H_
#define COMFEDSV_MODELS_MODEL_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace comfedsv {

/// A differentiable classifier over flat parameter vectors.
class Model {
 public:
  virtual ~Model() = default;

  /// Length of the flat parameter vector.
  virtual size_t num_params() const = 0;

  /// Input dimension this model expects.
  virtual size_t input_dim() const = 0;

  /// Number of classes.
  virtual int num_classes() const = 0;

  /// Short architecture name for logs and reports.
  virtual std::string name() const = 0;

  /// Mean loss over `data` (plus any built-in L2 regularizer).
  virtual double Loss(const Vector& params, const Dataset& data) const = 0;

  /// Mean loss and its gradient; `grad` is resized and overwritten.
  virtual double LossAndGradient(const Vector& params, const Dataset& data,
                                 Vector* grad) const = 0;

  /// Predicted class for a single feature row `x` of length input_dim().
  virtual int Predict(const Vector& params, const double* x) const = 0;

  /// Fraction of `data` classified correctly.
  double Accuracy(const Vector& params, const Dataset& data) const;

  /// Fills `params` with a small random initialization (N(0, scale^2)).
  void InitializeParams(Vector* params, Rng* rng,
                        double scale = 0.05) const;
};

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_MODEL_H_
