#include "models/batch_kernels.h"

#include "common/check.h"
#include "models/batch_kernels_impl.h"

namespace comfedsv {
namespace internal {
namespace {

constexpr size_t kBaselineTileCols = 10;

bool UseAvx2() {
#if defined(COMFEDSV_HAVE_AVX2_BATCH_KERNELS)
  static const bool use = __builtin_cpu_supports("avx2");
  return use;
#else
  return false;
#endif
}

void AffinePairBaseline(const PackedAffineBlock& pack, const double* x0,
                        const double* x1, double* z0, double* z1) {
  AffinePairImpl<kBaselineTileCols>(pack, x0, x1, z0, z1);
}

}  // namespace

#if defined(COMFEDSV_HAVE_AVX2_BATCH_KERNELS)
// Defined in batch_kernels_avx2.cc (compiled with -mavx2, no FMA).
void AffinePairAvx2_8(const PackedAffineBlock& pack, const double* x0,
                      const double* x1, double* z0, double* z1);
void AffinePairAvx2_12(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1);
void AffinePairAvx2_16(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1);
#endif

size_t SelectTileCols(size_t cols) {
  if (!UseAvx2()) return kBaselineTileCols;
  size_t best = 16;
  size_t best_rem = cols % 16;
  for (size_t cand : {size_t{12}, size_t{8}}) {
    const size_t rem = cols % cand;
    if (rem < best_rem) {
      best = cand;
      best_rem = rem;
    }
  }
  return best;
}

std::vector<size_t> SupportedTileCols() {
  std::vector<size_t> widths = {kBaselineTileCols};
  if (UseAvx2()) {
    widths.push_back(8);
    widths.push_back(12);
    widths.push_back(16);
  }
  return widths;
}

PackedAffineBlock PackAffineBlock(const Matrix& param_rows, size_t row_begin,
                                  size_t row_count, size_t weight_offset,
                                  size_t bias_offset, size_t dim,
                                  size_t width, size_t tile_cols) {
  COMFEDSV_CHECK_LE(row_begin + row_count, param_rows.rows());
  COMFEDSV_CHECK_LE(weight_offset + dim * width, param_rows.cols());
  COMFEDSV_CHECK_LE(bias_offset + width, param_rows.cols());
  PackedAffineBlock out;
  out.dim = dim;
  out.cols = row_count * width;
  out.tile_cols = tile_cols == 0 ? SelectTileCols(out.cols) : tile_cols;
  out.num_tiles = out.cols / out.tile_cols;
  out.rem = out.cols % out.tile_cols;

  // Tile pack built straight from the parameter rows (what re-tiling a
  // Matrix::PackRowSlices staging matrix would yield; fused here to keep
  // the hot path single-copy). Per tile, each column's member row and
  // weight-column offset are hoisted, so the j loop is width-strided
  // reads from at most tile_cols member rows.
  const size_t kT = out.tile_cols;
  out.tiles.resize(out.num_tiles * dim * kT);
  std::vector<const double*> col_src(kT);
  for (size_t tile = 0; tile < out.num_tiles; ++tile) {
    for (size_t t = 0; t < kT; ++t) {
      const size_t col = tile * kT + t;
      col_src[t] = param_rows.RowPtr(row_begin + col / width) +
                   weight_offset + col % width;
    }
    double* dst = out.tiles.data() + tile * dim * kT;
    for (size_t j = 0; j < dim; ++j) {
      for (size_t t = 0; t < kT; ++t) dst[t] = col_src[t][j * width];
      dst += kT;
    }
  }
  out.rem_pack.resize(out.rem * dim);
  for (size_t r = 0; r < out.rem; ++r) {
    const size_t col = out.num_tiles * kT + r;
    const double* src = param_rows.RowPtr(row_begin + col / width) +
                        weight_offset + col % width;
    for (size_t j = 0; j < dim; ++j) {
      out.rem_pack[r * dim + j] = src[j * width];
    }
  }
  out.bias.resize(out.cols);
  for (size_t m = 0; m < row_count; ++m) {
    const double* src = param_rows.RowPtr(row_begin + m) + bias_offset;
    for (size_t u = 0; u < width; ++u) out.bias[m * width + u] = src[u];
  }
  return out;
}

void BatchedAffinePair(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1) {
#if defined(COMFEDSV_HAVE_AVX2_BATCH_KERNELS)
  switch (pack.tile_cols) {
    case 8:
      AffinePairAvx2_8(pack, x0, x1, z0, z1);
      return;
    case 12:
      AffinePairAvx2_12(pack, x0, x1, z0, z1);
      return;
    case 16:
      AffinePairAvx2_16(pack, x0, x1, z0, z1);
      return;
    default:
      break;
  }
#endif
  AffinePairBaseline(pack, x0, x1, z0, z1);
}

}  // namespace internal
}  // namespace comfedsv
