// Multinomial (softmax) logistic regression with L2 regularization.
//
// With l2_penalty > 0 the loss is Lipschitz-on-bounded-sets, smooth, and
// strongly convex — exactly the conditions of Propositions 1 and 2, which
// makes this the model used by the rank-bound validation bench.
#ifndef COMFEDSV_MODELS_LOGISTIC_H_
#define COMFEDSV_MODELS_LOGISTIC_H_

#include <string>

#include "models/model.h"

namespace comfedsv {

/// Softmax regression: logits = W^T x + b.
/// Parameter layout: W row-major (dim x classes) followed by b (classes).
class LogisticRegression : public Model {
 public:
  /// `l2_penalty` adds 0.5 * l2 * ||params||^2 to the loss (all parameters,
  /// so the objective is l2-strongly convex).
  LogisticRegression(size_t input_dim, int num_classes,
                     double l2_penalty = 0.0);

  size_t num_params() const override;
  size_t input_dim() const override { return dim_; }
  int num_classes() const override { return classes_; }
  std::string name() const override { return "logistic"; }

  double Loss(const Vector& params, const Dataset& data) const override;

  /// Batched losses in one blocked pass over `data`: the batch is split
  /// into fixed sub-blocks whose weights are packed into register-width
  /// column tiles (internal::PackAffineBlock), so every test sample
  /// updates a whole tile of logits with contiguous multiply-adds
  /// instead of one short GEMV per batch member. Bit-identical to
  /// looping Loss; the sub-blocks fan out over `ctx`.
  void BatchLoss(const Matrix& param_rows, const Dataset& data,
                 std::vector<double>* out,
                 ExecutionContext* ctx = nullptr) const override;

  double LossAndGradient(const Vector& params, const Dataset& data,
                         Vector* grad) const override;
  int Predict(const Vector& params, const double* x) const override;

  double l2_penalty() const { return l2_penalty_; }

  void MixFingerprint(uint64_t* hash) const override;

 private:
  // Computes softmax probabilities for sample `x` into `probs` (length
  // classes_); returns the log-sum-exp-normalized log-loss contribution
  // for `label` if label >= 0, else 0.
  double ForwardSample(const Vector& params, const double* x, int label,
                       double* probs) const;

  size_t dim_;
  int classes_;
  double l2_penalty_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_LOGISTIC_H_
