// AVX2 instantiations of the batched affine tile pass. Compiled with
// -mavx2 only (never -mfma: fusing a*b+c would change rounding and break
// the bit-identity contract), and only linked on x86-64 gcc/clang builds
// — see src/models/CMakeLists.txt. The wider registers fit 2-sample
// tiles of 8/12/16 columns (whole ymm registers); SelectTileCols picks
// the width that leaves the fewest remainder columns. The arithmetic is
// identical to the baseline kernel.
#include "models/batch_kernels_impl.h"

namespace comfedsv {
namespace internal {

void AffinePairAvx2_8(const PackedAffineBlock& pack, const double* x0,
                      const double* x1, double* z0, double* z1) {
  AffinePairImpl<8>(pack, x0, x1, z0, z1);
}

void AffinePairAvx2_12(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1) {
  AffinePairImpl<12>(pack, x0, x1, z0, z1);
}

void AffinePairAvx2_16(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1) {
  AffinePairImpl<16>(pack, x0, x1, z0, z1);
}

}  // namespace internal
}  // namespace comfedsv
