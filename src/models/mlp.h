// Fully connected neural network (multilayer perceptron) with ReLU hidden
// activations and a softmax cross-entropy output — the paper's model for
// MNIST. Backpropagation is hand-written over the flat parameter layout.
#ifndef COMFEDSV_MODELS_MLP_H_
#define COMFEDSV_MODELS_MLP_H_

#include <string>
#include <vector>

#include "models/model.h"

namespace comfedsv {

/// MLP with layer sizes {input, hidden..., classes}.
///
/// Flat parameter layout, layer by layer: W_l row-major
/// (in_l x out_l) followed by b_l (out_l).
class Mlp : public Model {
 public:
  /// `layer_sizes` must have >= 2 entries; the first is the input
  /// dimension, the last is the number of classes.
  /// `l2_penalty` adds 0.5 * l2 * ||params||^2 to the loss.
  explicit Mlp(std::vector<size_t> layer_sizes, double l2_penalty = 0.0);

  size_t num_params() const override { return total_params_; }
  size_t input_dim() const override { return layer_sizes_.front(); }
  int num_classes() const override {
    return static_cast<int>(layer_sizes_.back());
  }
  std::string name() const override { return "mlp"; }

  double Loss(const Vector& params, const Dataset& data) const override;

  /// Batched losses in one blocked pass over `data`. The first layer —
  /// the only one whose input is shared across the batch — runs through
  /// the packed register-tile kernel (all block members' layer-0
  /// pre-activations from one pass over each sample); the remaining
  /// layers reuse the scalar forward tail per member. Bit-identical to
  /// looping Loss; sub-blocks fan out over `ctx`.
  void BatchLoss(const Matrix& param_rows, const Dataset& data,
                 std::vector<double>* out,
                 ExecutionContext* ctx = nullptr) const override;

  double LossAndGradient(const Vector& params, const Dataset& data,
                         Vector* grad) const override;
  int Predict(const Vector& params, const double* x) const override;

  int num_layers() const { return static_cast<int>(layer_sizes_.size()) - 1; }

  void MixFingerprint(uint64_t* hash) const override;

 private:
  struct LayerOffsets {
    size_t weights;  // offset of W_l in the flat vector
    size_t bias;     // offset of b_l
    size_t in;       // fan-in
    size_t out;      // fan-out
  };

  // Runs the forward pass for one sample; `activations[l]` receives the
  // post-activation output of layer l (layer num_layers()-1 holds softmax
  // probabilities). Returns the cross-entropy loss for `label` (>= 0) or 0.
  double ForwardSample(const Vector& params, const double* x, int label,
                       std::vector<std::vector<double>>* activations) const;

  // Forward pass from precomputed layer-0 *pre*-activations (already in
  // (*activations)[0]): applies layer 0's activation in place, runs the
  // remaining layers, and returns the loss like ForwardSample. Shared by
  // the scalar path and the batched kernel so both execute the same
  // arithmetic. `params` points at the flat parameter vector (raw so the
  // batched path can use stacked matrix rows without copying).
  double ForwardTail(const double* params, int label,
                     std::vector<std::vector<double>>* activations) const;

  std::vector<size_t> layer_sizes_;
  std::vector<LayerOffsets> offsets_;
  size_t total_params_;
  double l2_penalty_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_MLP_H_
