#include "models/model.h"

#include "common/check.h"
#include "common/fingerprint.h"

namespace comfedsv {

void Model::BatchLoss(const Matrix& param_rows, const Dataset& data,
                      std::vector<double>* out,
                      ExecutionContext* ctx) const {
  COMFEDSV_CHECK(out != nullptr);
  COMFEDSV_CHECK_EQ(param_rows.cols(), num_params());
  out->assign(param_rows.rows(), 0.0);
  // Each row writes its own slot: identical for any thread count.
  ParallelFor(ctx, static_cast<int>(param_rows.rows()), [&](int i) {
    (*out)[i] = Loss(param_rows.Row(i), data);
  });
}

double Model::Accuracy(const Vector& params, const Dataset& data) const {
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  if (data.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    if (Predict(params, data.sample(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_samples());
}

void Model::MixFingerprint(uint64_t* hash) const {
  for (char c : name()) {
    FingerprintMix(hash, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  FingerprintMix(hash, static_cast<uint64_t>(num_params()));
  FingerprintMix(hash, static_cast<uint64_t>(input_dim()));
  FingerprintMix(hash, static_cast<uint64_t>(num_classes()));
}

void Model::InitializeParams(Vector* params, Rng* rng, double scale) const {
  COMFEDSV_CHECK(params != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  params->Resize(num_params());
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] = rng->NextGaussian(0.0, scale);
  }
}

}  // namespace comfedsv
