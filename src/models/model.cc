#include "models/model.h"

#include "common/check.h"

namespace comfedsv {

double Model::Accuracy(const Vector& params, const Dataset& data) const {
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  if (data.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    if (Predict(params, data.sample(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_samples());
}

void Model::InitializeParams(Vector* params, Rng* rng, double scale) const {
  COMFEDSV_CHECK(params != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  params->Resize(num_params());
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i] = rng->NextGaussian(0.0, scale);
  }
}

}  // namespace comfedsv
