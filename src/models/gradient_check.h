// Finite-difference gradient verification. Exposed as a library utility so
// both the unit tests and downstream users adding custom models can check
// their analytic gradients.
#ifndef COMFEDSV_MODELS_GRADIENT_CHECK_H_
#define COMFEDSV_MODELS_GRADIENT_CHECK_H_

#include "data/dataset.h"
#include "linalg/vector.h"
#include "models/model.h"

namespace comfedsv {

/// Central-difference numerical gradient of `model`'s loss at `params`.
/// O(num_params) loss evaluations — test-sized inputs only.
Vector FiniteDifferenceGradient(const Model& model, const Vector& params,
                                const Dataset& data, double step = 1e-5);

/// Largest absolute difference between the analytic and finite-difference
/// gradients, normalized by max(1, ||analytic||_inf).
double MaxRelativeGradientError(const Model& model, const Vector& params,
                                const Dataset& data, double step = 1e-5);

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_GRADIENT_CHECK_H_
