#include "models/gradient_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

Vector FiniteDifferenceGradient(const Model& model, const Vector& params,
                                const Dataset& data, double step) {
  COMFEDSV_CHECK_GT(step, 0.0);
  Vector perturbed = params;
  Vector grad(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const double original = perturbed[i];
    perturbed[i] = original + step;
    const double up = model.Loss(perturbed, data);
    perturbed[i] = original - step;
    const double down = model.Loss(perturbed, data);
    perturbed[i] = original;
    grad[i] = (up - down) / (2.0 * step);
  }
  return grad;
}

double MaxRelativeGradientError(const Model& model, const Vector& params,
                                const Dataset& data, double step) {
  Vector analytic;
  model.LossAndGradient(params, data, &analytic);
  Vector numeric = FiniteDifferenceGradient(model, params, data, step);
  double max_diff = 0.0;
  for (size_t i = 0; i < analytic.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(analytic[i] - numeric[i]));
  }
  return max_diff / std::max(1.0, analytic.MaxAbs());
}

}  // namespace comfedsv
