#include "models/cnn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fingerprint.h"

namespace comfedsv {
namespace {
constexpr int kKernel = 3;
}  // namespace

Cnn::Cnn(const CnnConfig& config) : config_(config) {
  COMFEDSV_CHECK_GE(config_.image_side, kKernel + 1);
  COMFEDSV_CHECK_GT(config_.channels, 0);
  COMFEDSV_CHECK_GT(config_.num_filters, 0);
  COMFEDSV_CHECK_GT(config_.num_classes, 1);
  COMFEDSV_CHECK_GE(config_.l2_penalty, 0.0);
  conv_side_ = config_.image_side - kKernel + 1;
  pool_side_ = conv_side_ / 2;
  COMFEDSV_CHECK_GT(pool_side_, 0);
  pooled_dim_ = static_cast<size_t>(config_.num_filters) * pool_side_ *
                pool_side_;

  const size_t conv_w =
      static_cast<size_t>(config_.num_filters) * config_.channels * kKernel *
      kKernel;
  conv_weights_offset_ = 0;
  conv_bias_offset_ = conv_w;
  fc_weights_offset_ = conv_bias_offset_ + config_.num_filters;
  fc_bias_offset_ =
      fc_weights_offset_ + pooled_dim_ * config_.num_classes;
  total_params_ = fc_bias_offset_ + config_.num_classes;
}

double Cnn::ForwardSample(const Vector& params, const double* x, int label,
                          ForwardState* state) const {
  const int side = config_.image_side;
  const int cs = conv_side_;
  const int ps = pool_side_;
  const int filters = config_.num_filters;
  const int channels = config_.channels;
  const int classes = config_.num_classes;

  const double* conv_w = params.data() + conv_weights_offset_;
  const double* conv_b = params.data() + conv_bias_offset_;
  const double* fc_w = params.data() + fc_weights_offset_;
  const double* fc_b = params.data() + fc_bias_offset_;

  state->conv.assign(static_cast<size_t>(filters) * cs * cs, 0.0);
  state->pooled.assign(pooled_dim_, 0.0);
  state->argmax.assign(pooled_dim_, 0);
  state->probs.assign(classes, 0.0);

  // Convolution (valid) + ReLU.
  for (int f = 0; f < filters; ++f) {
    const double* wf =
        conv_w + static_cast<size_t>(f) * channels * kKernel * kKernel;
    double* out = state->conv.data() + static_cast<size_t>(f) * cs * cs;
    for (int r = 0; r < cs; ++r) {
      for (int c = 0; c < cs; ++c) {
        double acc = conv_b[f];
        for (int ch = 0; ch < channels; ++ch) {
          const double* img = x + static_cast<size_t>(ch) * side * side;
          const double* wch = wf + static_cast<size_t>(ch) * kKernel * kKernel;
          for (int dr = 0; dr < kKernel; ++dr) {
            const double* img_row = img + (r + dr) * side + c;
            const double* w_row = wch + dr * kKernel;
            acc += w_row[0] * img_row[0] + w_row[1] * img_row[1] +
                   w_row[2] * img_row[2];
          }
        }
        out[r * cs + c] = std::max(0.0, acc);
      }
    }
  }

  // 2x2 max pooling (stride 2; trailing row/col dropped when cs is odd).
  for (int f = 0; f < filters; ++f) {
    const double* conv = state->conv.data() + static_cast<size_t>(f) * cs * cs;
    for (int pr = 0; pr < ps; ++pr) {
      for (int pc = 0; pc < ps; ++pc) {
        int best_idx = (2 * pr) * cs + (2 * pc);
        double best = conv[best_idx];
        for (int dr = 0; dr < 2; ++dr) {
          for (int dc = 0; dc < 2; ++dc) {
            const int idx = (2 * pr + dr) * cs + (2 * pc + dc);
            if (conv[idx] > best) {
              best = conv[idx];
              best_idx = idx;
            }
          }
        }
        const size_t pool_idx =
            static_cast<size_t>(f) * ps * ps + pr * ps + pc;
        state->pooled[pool_idx] = best;
        state->argmax[pool_idx] = static_cast<int>(f) * cs * cs + best_idx;
      }
    }
  }

  // Fully connected + softmax.
  for (int k = 0; k < classes; ++k) state->probs[k] = fc_b[k];
  for (size_t i = 0; i < pooled_dim_; ++i) {
    const double v = state->pooled[i];
    if (v == 0.0) continue;
    const double* w_row = fc_w + i * classes;
    for (int k = 0; k < classes; ++k) state->probs[k] += v * w_row[k];
  }
  double max_logit =
      *std::max_element(state->probs.begin(), state->probs.end());
  double sum = 0.0;
  for (double& v : state->probs) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (double& v : state->probs) v /= sum;

  if (label < 0) return 0.0;
  return -std::log(std::max(state->probs[label], 1e-300));
}

void Cnn::MixFingerprint(uint64_t* hash) const {
  Model::MixFingerprint(hash);
  FingerprintMix(hash, static_cast<uint64_t>(config_.image_side));
  FingerprintMix(hash, static_cast<uint64_t>(config_.channels));
  FingerprintMix(hash, static_cast<uint64_t>(config_.num_filters));
  FingerprintMix(hash, config_.l2_penalty);
}

double Cnn::Loss(const Vector& params, const Dataset& data) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  ForwardState state;
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    total += ForwardSample(params, data.sample(i), data.label(i), &state);
  }
  double mean = data.empty() ? 0.0
                             : total / static_cast<double>(data.num_samples());
  return mean + 0.5 * config_.l2_penalty * params.Dot(params);
}

double Cnn::LossAndGradient(const Vector& params, const Dataset& data,
                            Vector* grad) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  COMFEDSV_CHECK(grad != nullptr);
  grad->Resize(num_params());
  grad->Fill(0.0);

  const int side = config_.image_side;
  const int cs = conv_side_;
  const int channels = config_.channels;
  const int classes = config_.num_classes;

  double* g_conv_w = grad->data() + conv_weights_offset_;
  double* g_conv_b = grad->data() + conv_bias_offset_;
  double* g_fc_w = grad->data() + fc_weights_offset_;
  double* g_fc_b = grad->data() + fc_bias_offset_;
  const double* fc_w = params.data() + fc_weights_offset_;

  ForwardState state;
  std::vector<double> dlogit(classes);
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    const double* x = data.sample(i);
    const int y = data.label(i);
    total += ForwardSample(params, x, y, &state);

    for (int k = 0; k < classes; ++k) dlogit[k] = state.probs[k];
    dlogit[y] -= 1.0;

    // FC gradients and pooled-layer deltas.
    for (int k = 0; k < classes; ++k) g_fc_b[k] += dlogit[k];
    for (size_t p = 0; p < pooled_dim_; ++p) {
      const double pooled = state.pooled[p];
      const double* w_row = fc_w + p * classes;
      double* gw_row = g_fc_w + p * classes;
      double dpool = 0.0;
      for (int k = 0; k < classes; ++k) {
        gw_row[k] += pooled * dlogit[k];
        dpool += w_row[k] * dlogit[k];
      }
      // Route the delta through the pooling argmax; ReLU passes gradient
      // only where the activation was strictly positive.
      if (pooled <= 0.0) continue;
      const int conv_idx = state.argmax[p];
      const int f = conv_idx / (cs * cs);
      const int rc = conv_idx % (cs * cs);
      const int r = rc / cs;
      const int c = rc % cs;
      g_conv_b[f] += dpool;
      double* gwf =
          g_conv_w + static_cast<size_t>(f) * channels * kKernel * kKernel;
      for (int ch = 0; ch < channels; ++ch) {
        const double* img = x + static_cast<size_t>(ch) * side * side;
        double* gw_ch = gwf + static_cast<size_t>(ch) * kKernel * kKernel;
        for (int dr = 0; dr < kKernel; ++dr) {
          const double* img_row = img + (r + dr) * side + c;
          double* gw_row2 = gw_ch + dr * kKernel;
          gw_row2[0] += dpool * img_row[0];
          gw_row2[1] += dpool * img_row[1];
          gw_row2[2] += dpool * img_row[2];
        }
      }
    }
  }

  const double inv_n =
      data.empty() ? 0.0 : 1.0 / static_cast<double>(data.num_samples());
  grad->Scale(inv_n);
  grad->Axpy(config_.l2_penalty, params);
  return total * inv_n + 0.5 * config_.l2_penalty * params.Dot(params);
}

int Cnn::Predict(const Vector& params, const double* x) const {
  ForwardState state;
  ForwardSample(params, x, /*label=*/-1, &state);
  return static_cast<int>(
      std::max_element(state.probs.begin(), state.probs.end()) -
      state.probs.begin());
}

}  // namespace comfedsv
