#include "models/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fingerprint.h"
#include "models/batch_kernels.h"

namespace comfedsv {

Mlp::Mlp(std::vector<size_t> layer_sizes, double l2_penalty)
    : layer_sizes_(std::move(layer_sizes)), l2_penalty_(l2_penalty) {
  COMFEDSV_CHECK_GE(layer_sizes_.size(), 2u);
  COMFEDSV_CHECK_GE(l2_penalty_, 0.0);
  size_t cursor = 0;
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    LayerOffsets off;
    off.in = layer_sizes_[l];
    off.out = layer_sizes_[l + 1];
    off.weights = cursor;
    cursor += off.in * off.out;
    off.bias = cursor;
    cursor += off.out;
    offsets_.push_back(off);
  }
  total_params_ = cursor;
}

double Mlp::ForwardSample(
    const Vector& params, const double* x, int label,
    std::vector<std::vector<double>>* activations) const {
  activations->resize(num_layers());
  // Layer-0 pre-activation; the shared tail applies its activation and
  // runs the remaining layers.
  const LayerOffsets& off0 = offsets_[0];
  std::vector<double>& out0 = (*activations)[0];
  out0.assign(off0.out, 0.0);
  const double* w = params.data() + off0.weights;  // in x out, row-major
  const double* b = params.data() + off0.bias;
  for (size_t c = 0; c < off0.out; ++c) out0[c] = b[c];
  for (size_t j = 0; j < off0.in; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* wrow = w + j * off0.out;
    for (size_t c = 0; c < off0.out; ++c) out0[c] += xj * wrow[c];
  }
  return ForwardTail(params.data(), label, activations);
}

double Mlp::ForwardTail(const double* params, int label,
                        std::vector<std::vector<double>>* activations) const {
  const int layers = num_layers();
  const double* input = nullptr;
  size_t input_len = 0;
  for (int l = 0; l < layers; ++l) {
    const LayerOffsets& off = offsets_[l];
    std::vector<double>& out = (*activations)[l];
    if (l == 0) {
      // (*activations)[0] already holds the pre-activation.
      COMFEDSV_CHECK_EQ(out.size(), off.out);
    } else {
      COMFEDSV_CHECK_EQ(input_len, off.in);
      out.assign(off.out, 0.0);
      const double* w = params + off.weights;  // in x out, row-major
      const double* b = params + off.bias;
      for (size_t c = 0; c < off.out; ++c) out[c] = b[c];
      for (size_t j = 0; j < off.in; ++j) {
        const double xj = input[j];
        if (xj == 0.0) continue;
        const double* wrow = w + j * off.out;
        for (size_t c = 0; c < off.out; ++c) out[c] += xj * wrow[c];
      }
    }
    if (l + 1 < layers) {
      for (double& v : out) v = std::max(0.0, v);  // ReLU
    } else {
      // Softmax on the output layer.
      double max_logit = *std::max_element(out.begin(), out.end());
      double sum = 0.0;
      for (double& v : out) {
        v = std::exp(v - max_logit);
        sum += v;
      }
      for (double& v : out) v /= sum;
    }
    input = out.data();
    input_len = off.out;
  }
  if (label < 0) return 0.0;
  const double p = (*activations)[layers - 1][label];
  return -std::log(std::max(p, 1e-300));
}

void Mlp::MixFingerprint(uint64_t* hash) const {
  Model::MixFingerprint(hash);
  for (size_t width : layer_sizes_) {
    FingerprintMix(hash, static_cast<uint64_t>(width));
  }
  FingerprintMix(hash, l2_penalty_);
}

double Mlp::Loss(const Vector& params, const Dataset& data) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  std::vector<std::vector<double>> acts;
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    total += ForwardSample(params, data.sample(i), data.label(i), &acts);
  }
  double mean = data.empty() ? 0.0
                             : total / static_cast<double>(data.num_samples());
  return mean + 0.5 * l2_penalty_ * params.Dot(params);
}

void Mlp::BatchLoss(const Matrix& param_rows, const Dataset& data,
                    std::vector<double>* out, ExecutionContext* ctx) const {
  COMFEDSV_CHECK(out != nullptr);
  COMFEDSV_CHECK_EQ(param_rows.cols(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  const size_t batch = param_rows.rows();
  out->assign(batch, 0.0);
  if (batch == 0) return;

  const size_t block = internal::kCoalitionBlock;
  const size_t num_blocks = (batch + block - 1) / block;
  const LayerOffsets& off0 = offsets_[0];
  // Sub-blocks write disjoint out-slots; identical for any thread count.
  ParallelFor(ctx, static_cast<int>(num_blocks), [&](int blk) {
    const size_t b0 = static_cast<size_t>(blk) * block;
    const size_t nb = std::min(b0 + block, batch) - b0;
    const internal::PackedAffineBlock pack = internal::PackAffineBlock(
        param_rows, b0, nb, off0.weights, off0.bias, off0.in, off0.out);
    const size_t cols = pack.cols;

    std::vector<std::vector<std::vector<double>>> acts(nb);
    std::vector<double> z(2 * cols);
    std::vector<double> totals(nb, 0.0);
    for (size_t i = 0; i < data.num_samples(); i += 2) {
      const bool pair = i + 1 < data.num_samples();
      internal::BatchedAffinePair(pack, data.sample(i),
                                  pair ? data.sample(i + 1) : nullptr,
                                  z.data(), z.data() + cols);
      const size_t ns = pair ? 2 : 1;
      for (size_t s = 0; s < ns; ++s) {
        const int label = data.label(i + s);
        const double* zs = z.data() + s * cols;
        for (size_t b = 0; b < nb; ++b) {
          acts[b].resize(num_layers());
          acts[b][0].assign(zs + b * off0.out, zs + (b + 1) * off0.out);
          totals[b] +=
              ForwardTail(param_rows.RowPtr(b0 + b), label, &acts[b]);
        }
      }
    }
    for (size_t b = 0; b < nb; ++b) {
      // Same mean and regularizer arithmetic as Loss (ascending-order
      // dot product, division by the sample count).
      const double mean =
          data.empty() ? 0.0
                       : totals[b] / static_cast<double>(data.num_samples());
      const double* p = param_rows.RowPtr(b0 + b);
      double dot = 0.0;
      for (size_t k = 0; k < param_rows.cols(); ++k) dot += p[k] * p[k];
      (*out)[b0 + b] = mean + 0.5 * l2_penalty_ * dot;
    }
  });
}

double Mlp::LossAndGradient(const Vector& params, const Dataset& data,
                            Vector* grad) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  COMFEDSV_CHECK(grad != nullptr);
  grad->Resize(num_params());
  grad->Fill(0.0);

  const int layers = num_layers();
  std::vector<std::vector<double>> acts;
  std::vector<double> delta, delta_prev;
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    const double* x = data.sample(i);
    const int y = data.label(i);
    total += ForwardSample(params, x, y, &acts);

    // Output delta: softmax-CE gives p - onehot(y).
    delta = acts[layers - 1];
    delta[y] -= 1.0;

    for (int l = layers - 1; l >= 0; --l) {
      const LayerOffsets& off = offsets_[l];
      const double* input = (l == 0) ? x : acts[l - 1].data();
      double* gw = grad->data() + off.weights;
      double* gb = grad->data() + off.bias;
      for (size_t j = 0; j < off.in; ++j) {
        const double xj = input[j];
        if (xj != 0.0) {
          double* gw_row = gw + j * off.out;
          for (size_t c = 0; c < off.out; ++c) gw_row[c] += xj * delta[c];
        }
      }
      for (size_t c = 0; c < off.out; ++c) gb[c] += delta[c];

      if (l > 0) {
        // delta_prev = W delta, masked by ReLU' of layer l-1 activations.
        const double* w = params.data() + off.weights;
        delta_prev.assign(off.in, 0.0);
        for (size_t j = 0; j < off.in; ++j) {
          if (acts[l - 1][j] <= 0.0) continue;  // ReLU gradient is 0
          const double* wrow = w + j * off.out;
          double acc = 0.0;
          for (size_t c = 0; c < off.out; ++c) acc += wrow[c] * delta[c];
          delta_prev[j] = acc;
        }
        delta.swap(delta_prev);
      }
    }
  }
  const double inv_n =
      data.empty() ? 0.0 : 1.0 / static_cast<double>(data.num_samples());
  grad->Scale(inv_n);
  grad->Axpy(l2_penalty_, params);
  return total * inv_n + 0.5 * l2_penalty_ * params.Dot(params);
}

int Mlp::Predict(const Vector& params, const double* x) const {
  std::vector<std::vector<double>> acts;
  ForwardSample(params, x, /*label=*/-1, &acts);
  const std::vector<double>& probs = acts[num_layers() - 1];
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace comfedsv
