#include "models/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

Mlp::Mlp(std::vector<size_t> layer_sizes, double l2_penalty)
    : layer_sizes_(std::move(layer_sizes)), l2_penalty_(l2_penalty) {
  COMFEDSV_CHECK_GE(layer_sizes_.size(), 2u);
  COMFEDSV_CHECK_GE(l2_penalty_, 0.0);
  size_t cursor = 0;
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    LayerOffsets off;
    off.in = layer_sizes_[l];
    off.out = layer_sizes_[l + 1];
    off.weights = cursor;
    cursor += off.in * off.out;
    off.bias = cursor;
    cursor += off.out;
    offsets_.push_back(off);
  }
  total_params_ = cursor;
}

double Mlp::ForwardSample(
    const Vector& params, const double* x, int label,
    std::vector<std::vector<double>>* activations) const {
  const int layers = num_layers();
  activations->resize(layers);
  const double* input = x;
  size_t input_len = layer_sizes_[0];
  for (int l = 0; l < layers; ++l) {
    const LayerOffsets& off = offsets_[l];
    COMFEDSV_CHECK_EQ(input_len, off.in);
    std::vector<double>& out = (*activations)[l];
    out.assign(off.out, 0.0);
    const double* w = params.data() + off.weights;  // in x out, row-major
    const double* b = params.data() + off.bias;
    for (size_t c = 0; c < off.out; ++c) out[c] = b[c];
    for (size_t j = 0; j < off.in; ++j) {
      const double xj = input[j];
      if (xj == 0.0) continue;
      const double* wrow = w + j * off.out;
      for (size_t c = 0; c < off.out; ++c) out[c] += xj * wrow[c];
    }
    if (l + 1 < layers) {
      for (double& v : out) v = std::max(0.0, v);  // ReLU
    } else {
      // Softmax on the output layer.
      double max_logit = *std::max_element(out.begin(), out.end());
      double sum = 0.0;
      for (double& v : out) {
        v = std::exp(v - max_logit);
        sum += v;
      }
      for (double& v : out) v /= sum;
    }
    input = out.data();
    input_len = off.out;
  }
  if (label < 0) return 0.0;
  const double p = (*activations)[layers - 1][label];
  return -std::log(std::max(p, 1e-300));
}

double Mlp::Loss(const Vector& params, const Dataset& data) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  std::vector<std::vector<double>> acts;
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    total += ForwardSample(params, data.sample(i), data.label(i), &acts);
  }
  double mean = data.empty() ? 0.0
                             : total / static_cast<double>(data.num_samples());
  return mean + 0.5 * l2_penalty_ * params.Dot(params);
}

double Mlp::LossAndGradient(const Vector& params, const Dataset& data,
                            Vector* grad) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), input_dim());
  COMFEDSV_CHECK(grad != nullptr);
  grad->Resize(num_params());
  grad->Fill(0.0);

  const int layers = num_layers();
  std::vector<std::vector<double>> acts;
  std::vector<double> delta, delta_prev;
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    const double* x = data.sample(i);
    const int y = data.label(i);
    total += ForwardSample(params, x, y, &acts);

    // Output delta: softmax-CE gives p - onehot(y).
    delta = acts[layers - 1];
    delta[y] -= 1.0;

    for (int l = layers - 1; l >= 0; --l) {
      const LayerOffsets& off = offsets_[l];
      const double* input = (l == 0) ? x : acts[l - 1].data();
      double* gw = grad->data() + off.weights;
      double* gb = grad->data() + off.bias;
      for (size_t j = 0; j < off.in; ++j) {
        const double xj = input[j];
        if (xj != 0.0) {
          double* gw_row = gw + j * off.out;
          for (size_t c = 0; c < off.out; ++c) gw_row[c] += xj * delta[c];
        }
      }
      for (size_t c = 0; c < off.out; ++c) gb[c] += delta[c];

      if (l > 0) {
        // delta_prev = W delta, masked by ReLU' of layer l-1 activations.
        const double* w = params.data() + off.weights;
        delta_prev.assign(off.in, 0.0);
        for (size_t j = 0; j < off.in; ++j) {
          if (acts[l - 1][j] <= 0.0) continue;  // ReLU gradient is 0
          const double* wrow = w + j * off.out;
          double acc = 0.0;
          for (size_t c = 0; c < off.out; ++c) acc += wrow[c] * delta[c];
          delta_prev[j] = acc;
        }
        delta.swap(delta_prev);
      }
    }
  }
  const double inv_n =
      data.empty() ? 0.0 : 1.0 / static_cast<double>(data.num_samples());
  grad->Scale(inv_n);
  grad->Axpy(l2_penalty_, params);
  return total * inv_n + 0.5 * l2_penalty_ * params.Dot(params);
}

int Mlp::Predict(const Vector& params, const double* x) const {
  std::vector<std::vector<double>> acts;
  ForwardSample(params, x, /*label=*/-1, &acts);
  const std::vector<double>& probs = acts[num_layers() - 1];
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace comfedsv
