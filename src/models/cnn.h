// Small convolutional network: conv(3x3, valid) -> ReLU -> maxpool(2x2)
// -> fully-connected -> softmax. This is the library's stand-in for the
// paper's CNN/VGG16 models (see DESIGN.md substitutions): it exercises a
// genuinely non-convex, weight-shared architecture through the same
// valuation pipeline.
#ifndef COMFEDSV_MODELS_CNN_H_
#define COMFEDSV_MODELS_CNN_H_

#include <string>
#include <vector>

#include "models/model.h"

namespace comfedsv {

/// Configuration of the small CNN.
struct CnnConfig {
  int image_side = 8;    ///< input is channels x side x side
  int channels = 1;      ///< 1 for MNIST-like, 3 for CIFAR-like
  int num_filters = 8;   ///< conv output channels
  int num_classes = 10;
  double l2_penalty = 0.0;
};

/// conv3x3(valid) -> ReLU -> maxpool2x2 -> FC -> softmax.
///
/// Input rows are images flattened channel-major:
/// x[ch * side * side + r * side + c].
/// Flat parameter layout: conv weights [filters][channels][3][3], conv
/// bias [filters], FC weights (pooled_dim x classes) row-major, FC bias
/// [classes].
class Cnn : public Model {
 public:
  explicit Cnn(const CnnConfig& config);

  size_t num_params() const override { return total_params_; }
  size_t input_dim() const override {
    return static_cast<size_t>(config_.channels) * config_.image_side *
           config_.image_side;
  }
  int num_classes() const override { return config_.num_classes; }
  std::string name() const override { return "cnn"; }

  double Loss(const Vector& params, const Dataset& data) const override;
  double LossAndGradient(const Vector& params, const Dataset& data,
                         Vector* grad) const override;
  int Predict(const Vector& params, const double* x) const override;

  void MixFingerprint(uint64_t* hash) const override;

  int conv_side() const { return conv_side_; }
  int pool_side() const { return pool_side_; }
  size_t pooled_dim() const { return pooled_dim_; }

 private:
  struct ForwardState {
    std::vector<double> conv;    // filters * conv_side^2, post-ReLU
    std::vector<double> pooled;  // filters * pool_side^2
    std::vector<int> argmax;     // index into conv for each pooled cell
    std::vector<double> probs;   // classes
  };

  double ForwardSample(const Vector& params, const double* x, int label,
                       ForwardState* state) const;

  CnnConfig config_;
  int conv_side_;
  int pool_side_;
  size_t pooled_dim_;
  size_t conv_weights_offset_;
  size_t conv_bias_offset_;
  size_t fc_weights_offset_;
  size_t fc_bias_offset_;
  size_t total_params_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_CNN_H_
