// Template body of the batched affine tile pass, included by each
// per-ISA translation unit (batch_kernels.cc baseline, and
// batch_kernels_avx2.cc compiled with -mavx2). The instantiating TU picks
// the tile width; the arithmetic — ascending-feature accumulation with
// exact-zero skips, no FMA — is identical everywhere, so every ISA
// produces the same doubles.
#ifndef COMFEDSV_MODELS_BATCH_KERNELS_IMPL_H_
#define COMFEDSV_MODELS_BATCH_KERNELS_IMPL_H_

#include "common/check.h"
#include "models/batch_kernels.h"

namespace comfedsv {
namespace internal {

template <int kT>
inline void AffinePairImpl(const PackedAffineBlock& pack, const double* x0,
                           const double* x1, double* z0, double* z1) {
  COMFEDSV_CHECK_EQ(pack.tile_cols, static_cast<size_t>(kT));
  const size_t d = pack.dim;
  for (size_t tile = 0; tile < pack.num_tiles; ++tile) {
    const double* pt = pack.tiles.data() + tile * d * kT;
    const double* bt = pack.bias.data() + tile * kT;
    double a0[kT], a1[kT];
    for (int t = 0; t < kT; ++t) a0[t] = bt[t];
    if (x1 != nullptr) {
      for (int t = 0; t < kT; ++t) a1[t] = bt[t];
      for (size_t j = 0; j < d; ++j) {
        const double* pr = pt + j * kT;
        const double u = x0[j];
        const double v = x1[j];
        if (u != 0.0) {
          for (int t = 0; t < kT; ++t) a0[t] += u * pr[t];
        }
        if (v != 0.0) {
          for (int t = 0; t < kT; ++t) a1[t] += v * pr[t];
        }
      }
      for (int t = 0; t < kT; ++t) z1[tile * kT + t] = a1[t];
    } else {
      for (size_t j = 0; j < d; ++j) {
        const double u = x0[j];
        if (u == 0.0) continue;
        const double* pr = pt + j * kT;
        for (int t = 0; t < kT; ++t) a0[t] += u * pr[t];
      }
    }
    for (int t = 0; t < kT; ++t) z0[tile * kT + t] = a0[t];
  }

  for (size_t r = 0; r < pack.rem; ++r) {
    const size_t col = pack.num_tiles * kT + r;
    const double* pc = pack.rem_pack.data() + r * d;
    double acc0 = pack.bias[col];
    for (size_t j = 0; j < d; ++j) {
      const double u = x0[j];
      if (u == 0.0) continue;
      acc0 += u * pc[j];
    }
    z0[col] = acc0;
    if (x1 != nullptr) {
      double acc1 = pack.bias[col];
      for (size_t j = 0; j < d; ++j) {
        const double v = x1[j];
        if (v == 0.0) continue;
        acc1 += v * pc[j];
      }
      z1[col] = acc1;
    }
  }
}

}  // namespace internal
}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_BATCH_KERNELS_IMPL_H_
