// Internal register-tiled kernels behind the BatchLoss overrides.
//
// Both LogisticRegression and Mlp (layer 0) need the same primitive: for
// a block of stacked parameter rows, compute the affine outputs
//
//   z[s][col] = bias[col] + sum_j x_s[j] * W_col[j],   col = (member, unit)
//
// for every test sample s, where the per-member weight matrices share one
// input x_s. The kernels here compute that with all members of a block in
// one pass over the features: columns are packed tile-sequentially into
// register-width tiles (the Matrix::PackRowSlices layout, re-tiled and
// fused into one copy), and two samples are processed per pass, so each
// tile's accumulators live in registers across the whole feature loop
// and each packed cache line is reused by both samples.
//
// The tile pass is compiled per ISA (a baseline TU and, on x86-64 with
// gcc/clang, an -mavx2 TU with a wider tile) and dispatched once at
// runtime. No variant enables FMA — fusing a*b+c would change rounding —
// so every ISA computes the same doubles; only the tile width (a pure
// layout choice) differs.
//
// Bit-identity contract (see model.h): every z[s][col] accumulates its
// terms in ascending feature order and skips exact-zero features, exactly
// like the scalar per-member loops in logistic.cc / mlp.cc — so tiling,
// ISA, batch size, and sample pairing never change a single output bit.
#ifndef COMFEDSV_MODELS_BATCH_KERNELS_H_
#define COMFEDSV_MODELS_BATCH_KERNELS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace comfedsv {
namespace internal {

/// Tile width (output columns per register tile) chosen for a block of
/// `cols` output columns: 10 for the baseline kernel (2 samples x 10
/// double accumulators fit the 16 SSE registers); with the AVX2 tile
/// pass compiled in and supported by the CPU, the width from {16, 12, 8}
/// (ymm-multiples) that leaves the fewest slow remainder columns. A pure
/// layout choice — never affects the computed doubles.
size_t SelectTileCols(size_t cols);

/// Every tile width the running process can execute: the baseline width
/// plus any ISA-variant widths active on this CPU. Exposed so tests can
/// exercise each compiled kernel regardless of which one SelectTileCols
/// would pick.
std::vector<size_t> SupportedTileCols();

/// One block's packed affine columns: tile-sequential weight pack,
/// per-column remainder pack, and the bias row.
struct PackedAffineBlock {
  size_t dim = 0;        ///< features per column (the shared j loop)
  size_t cols = 0;       ///< total output columns (members * width)
  size_t tile_cols = 0;  ///< tile width the pack was built for
  size_t num_tiles = 0;  ///< cols / tile_cols
  size_t rem = 0;        ///< cols % tile_cols
  /// Tile-sequential pack: tiles[(tile * dim + j) * tile_cols + t] is
  /// feature j of column tile*tile_cols + t.
  std::vector<double> tiles;
  /// Remainder columns, one dim-length run per column.
  std::vector<double> rem_pack;
  /// bias[col].
  std::vector<double> bias;
};

/// Packs rows [row_begin, row_begin+row_count) of `param_rows` for the
/// batched affine kernel. Each row holds a member's flat parameters with
/// a (dim x width) row-major weight block at `weight_offset` and a
/// width-length bias at `bias_offset`. Column order is member-major:
/// col = member * width + unit. `tile_cols` must be 0 (auto:
/// SelectTileCols) or one of SupportedTileCols().
PackedAffineBlock PackAffineBlock(const Matrix& param_rows, size_t row_begin,
                                  size_t row_count, size_t weight_offset,
                                  size_t bias_offset, size_t dim,
                                  size_t width, size_t tile_cols = 0);

/// Computes z0/z1 (length pack.cols) for the sample pair x0/x1. `x1` may
/// be null (odd tail), in which case only z0 is written.
void BatchedAffinePair(const PackedAffineBlock& pack, const double* x0,
                       const double* x1, double* z0, double* z1);

/// Members per sub-block of a batched loss: the packed weights of 8
/// members stay L2-resident up to a few thousand parameters per member,
/// and sub-blocks are the unit of ExecutionContext parallelism. Fixed
/// (never derived from thread count) so results are thread-invariant.
inline constexpr size_t kCoalitionBlock = 8;

}  // namespace internal
}  // namespace comfedsv

#endif  // COMFEDSV_MODELS_BATCH_KERNELS_H_
