#include "models/logistic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/fingerprint.h"
#include "models/batch_kernels.h"

namespace comfedsv {

LogisticRegression::LogisticRegression(size_t input_dim, int num_classes,
                                       double l2_penalty)
    : dim_(input_dim), classes_(num_classes), l2_penalty_(l2_penalty) {
  COMFEDSV_CHECK_GT(dim_, 0u);
  COMFEDSV_CHECK_GT(classes_, 1);
  COMFEDSV_CHECK_GE(l2_penalty_, 0.0);
}

size_t LogisticRegression::num_params() const {
  return dim_ * static_cast<size_t>(classes_) +
         static_cast<size_t>(classes_);
}

double LogisticRegression::ForwardSample(const Vector& params,
                                         const double* x, int label,
                                         double* probs) const {
  const double* w = params.data();                  // dim x classes
  const double* b = params.data() + dim_ * classes_;  // classes
  for (int c = 0; c < classes_; ++c) probs[c] = b[c];
  for (size_t j = 0; j < dim_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* wrow = w + j * classes_;
    for (int c = 0; c < classes_; ++c) probs[c] += xj * wrow[c];
  }
  double max_logit = probs[0];
  for (int c = 1; c < classes_; ++c) max_logit = std::max(max_logit, probs[c]);
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) {
    probs[c] = std::exp(probs[c] - max_logit);
    sum += probs[c];
  }
  double loss = 0.0;
  if (label >= 0) loss = -std::log(std::max(probs[label] / sum, 1e-300));
  for (int c = 0; c < classes_; ++c) probs[c] /= sum;
  return loss;
}

void LogisticRegression::MixFingerprint(uint64_t* hash) const {
  Model::MixFingerprint(hash);
  FingerprintMix(hash, l2_penalty_);
}

double LogisticRegression::Loss(const Vector& params,
                                const Dataset& data) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), dim_);
  std::vector<double> probs(classes_);
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    total += ForwardSample(params, data.sample(i), data.label(i),
                           probs.data());
  }
  double mean = data.empty() ? 0.0
                             : total / static_cast<double>(data.num_samples());
  return mean + 0.5 * l2_penalty_ * params.Dot(params);
}

void LogisticRegression::BatchLoss(const Matrix& param_rows,
                                   const Dataset& data,
                                   std::vector<double>* out,
                                   ExecutionContext* ctx) const {
  COMFEDSV_CHECK(out != nullptr);
  COMFEDSV_CHECK_EQ(param_rows.cols(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), dim_);
  const size_t batch = param_rows.rows();
  out->assign(batch, 0.0);
  if (batch == 0) return;

  const size_t block = internal::kCoalitionBlock;
  const size_t num_blocks = (batch + block - 1) / block;
  const size_t classes = static_cast<size_t>(classes_);
  // Sub-blocks write disjoint out-slots; identical for any thread count.
  ParallelFor(ctx, static_cast<int>(num_blocks), [&](int blk) {
    const size_t b0 = static_cast<size_t>(blk) * block;
    const size_t nb = std::min(b0 + block, batch) - b0;
    const internal::PackedAffineBlock pack = internal::PackAffineBlock(
        param_rows, b0, nb, /*weight_offset=*/0,
        /*bias_offset=*/dim_ * classes, dim_, classes);

    const size_t cols = pack.cols;
    std::vector<double> logits(2 * cols);
    std::vector<double> totals(nb, 0.0);
    std::vector<double> probs(classes);
    for (size_t i = 0; i < data.num_samples(); i += 2) {
      const bool pair = i + 1 < data.num_samples();
      internal::BatchedAffinePair(pack, data.sample(i),
                                  pair ? data.sample(i + 1) : nullptr,
                                  logits.data(), logits.data() + cols);
      const size_t ns = pair ? 2 : 1;
      for (size_t s = 0; s < ns; ++s) {
        const int label = data.label(i + s);
        for (size_t b = 0; b < nb; ++b) {
          // Same softmax-loss arithmetic as ForwardSample, fed by the
          // batched logits: identical accumulation, identical result.
          const double* lg = logits.data() + s * cols + b * classes;
          double max_logit = lg[0];
          for (size_t c = 1; c < classes; ++c) {
            max_logit = std::max(max_logit, lg[c]);
          }
          double sum = 0.0;
          for (size_t c = 0; c < classes; ++c) {
            probs[c] = std::exp(lg[c] - max_logit);
            sum += probs[c];
          }
          totals[b] +=
              -std::log(std::max(probs[static_cast<size_t>(label)] / sum,
                                 1e-300));
        }
      }
    }
    for (size_t b = 0; b < nb; ++b) {
      // Same mean and regularizer arithmetic as Loss (ascending-order
      // dot product, division by the sample count).
      const double mean =
          data.empty() ? 0.0
                       : totals[b] / static_cast<double>(data.num_samples());
      const double* p = param_rows.RowPtr(b0 + b);
      double dot = 0.0;
      for (size_t k = 0; k < param_rows.cols(); ++k) dot += p[k] * p[k];
      (*out)[b0 + b] = mean + 0.5 * l2_penalty_ * dot;
    }
  });
}

double LogisticRegression::LossAndGradient(const Vector& params,
                                           const Dataset& data,
                                           Vector* grad) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), dim_);
  COMFEDSV_CHECK(grad != nullptr);
  grad->Resize(num_params());
  grad->Fill(0.0);

  std::vector<double> probs(classes_);
  double total = 0.0;
  double* gw = grad->data();
  double* gb = grad->data() + dim_ * classes_;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    const double* x = data.sample(i);
    const int y = data.label(i);
    total += ForwardSample(params, x, y, probs.data());
    // dL/dlogit_c = p_c - 1{c == y}
    probs[y] -= 1.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      double* gw_row = gw + j * classes_;
      for (int c = 0; c < classes_; ++c) gw_row[c] += xj * probs[c];
    }
    for (int c = 0; c < classes_; ++c) gb[c] += probs[c];
  }
  const double inv_n =
      data.empty() ? 0.0 : 1.0 / static_cast<double>(data.num_samples());
  grad->Scale(inv_n);
  grad->Axpy(l2_penalty_, params);
  return total * inv_n + 0.5 * l2_penalty_ * params.Dot(params);
}

int LogisticRegression::Predict(const Vector& params, const double* x) const {
  std::vector<double> probs(classes_);
  ForwardSample(params, x, /*label=*/-1, probs.data());
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace comfedsv
