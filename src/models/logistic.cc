#include "models/logistic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace comfedsv {

LogisticRegression::LogisticRegression(size_t input_dim, int num_classes,
                                       double l2_penalty)
    : dim_(input_dim), classes_(num_classes), l2_penalty_(l2_penalty) {
  COMFEDSV_CHECK_GT(dim_, 0u);
  COMFEDSV_CHECK_GT(classes_, 1);
  COMFEDSV_CHECK_GE(l2_penalty_, 0.0);
}

size_t LogisticRegression::num_params() const {
  return dim_ * static_cast<size_t>(classes_) +
         static_cast<size_t>(classes_);
}

double LogisticRegression::ForwardSample(const Vector& params,
                                         const double* x, int label,
                                         double* probs) const {
  const double* w = params.data();                  // dim x classes
  const double* b = params.data() + dim_ * classes_;  // classes
  for (int c = 0; c < classes_; ++c) probs[c] = b[c];
  for (size_t j = 0; j < dim_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* wrow = w + j * classes_;
    for (int c = 0; c < classes_; ++c) probs[c] += xj * wrow[c];
  }
  double max_logit = probs[0];
  for (int c = 1; c < classes_; ++c) max_logit = std::max(max_logit, probs[c]);
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) {
    probs[c] = std::exp(probs[c] - max_logit);
    sum += probs[c];
  }
  double loss = 0.0;
  if (label >= 0) loss = -std::log(std::max(probs[label] / sum, 1e-300));
  for (int c = 0; c < classes_; ++c) probs[c] /= sum;
  return loss;
}

double LogisticRegression::Loss(const Vector& params,
                                const Dataset& data) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), dim_);
  std::vector<double> probs(classes_);
  double total = 0.0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    total += ForwardSample(params, data.sample(i), data.label(i),
                           probs.data());
  }
  double mean = data.empty() ? 0.0
                             : total / static_cast<double>(data.num_samples());
  return mean + 0.5 * l2_penalty_ * params.Dot(params);
}

double LogisticRegression::LossAndGradient(const Vector& params,
                                           const Dataset& data,
                                           Vector* grad) const {
  COMFEDSV_CHECK_EQ(params.size(), num_params());
  COMFEDSV_CHECK_EQ(data.dim(), dim_);
  COMFEDSV_CHECK(grad != nullptr);
  grad->Resize(num_params());
  grad->Fill(0.0);

  std::vector<double> probs(classes_);
  double total = 0.0;
  double* gw = grad->data();
  double* gb = grad->data() + dim_ * classes_;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    const double* x = data.sample(i);
    const int y = data.label(i);
    total += ForwardSample(params, x, y, probs.data());
    // dL/dlogit_c = p_c - 1{c == y}
    probs[y] -= 1.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      double* gw_row = gw + j * classes_;
      for (int c = 0; c < classes_; ++c) gw_row[c] += xj * probs[c];
    }
    for (int c = 0; c < classes_; ++c) gb[c] += probs[c];
  }
  const double inv_n =
      data.empty() ? 0.0 : 1.0 / static_cast<double>(data.num_samples());
  grad->Scale(inv_n);
  grad->Axpy(l2_penalty_, params);
  return total * inv_n + 0.5 * l2_penalty_ * params.Dot(params);
}

int LogisticRegression::Predict(const Vector& params, const double* x) const {
  std::vector<double> probs(classes_);
  ForwardSample(params, x, /*label=*/-1, probs.data());
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace comfedsv
