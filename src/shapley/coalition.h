// Coalition: a subset of clients out of a fixed universe {0, ..., N-1}.
// Implemented as a dynamic bitset so the library supports N > 64 (the
// paper's Fig. 7/8 experiments use up to 100 clients).
#ifndef COMFEDSV_SHAPLEY_COALITION_H_
#define COMFEDSV_SHAPLEY_COALITION_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

namespace comfedsv {

/// A subset of {0, ..., universe_size-1}, hashable and order-comparable.
class Coalition {
 public:
  Coalition() : universe_size_(0) {}

  /// The empty coalition over a universe of `universe_size` clients.
  explicit Coalition(int universe_size);

  /// Coalition containing exactly `members`.
  static Coalition FromMembers(int universe_size,
                               const std::vector<int>& members);

  /// The full coalition {0, ..., universe_size-1}.
  static Coalition Full(int universe_size);

  int universe_size() const { return universe_size_; }

  void Add(int client);
  void Remove(int client);
  bool Contains(int client) const;

  /// Number of members.
  int Count() const;
  bool IsEmpty() const { return Count() == 0; }

  /// True iff every member of this coalition is in `other`.
  bool IsSubsetOf(const Coalition& other) const;

  /// Sorted member list.
  std::vector<int> Members() const;

  /// Visits every member in ascending order without allocating — the
  /// utility/recorder hot paths call this once per coalition evaluation,
  /// where a Members() vector per call would churn the heap.
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        const int bit = std::countr_zero(bits);
        fn(static_cast<int>(w * 64 + bit));
        bits &= bits - 1;
      }
    }
  }

  /// Copy with `client` added / removed.
  Coalition With(int client) const;
  Coalition Without(int client) const;

  bool operator==(const Coalition& other) const {
    return universe_size_ == other.universe_size_ && words_ == other.words_;
  }
  bool operator!=(const Coalition& other) const { return !(*this == other); }

  /// Lexicographic order on the bit pattern (for deterministic maps).
  bool operator<(const Coalition& other) const;

  size_t Hash() const;

 private:
  void CheckClient(int client) const;

  int universe_size_;
  std::vector<uint64_t> words_;
};

/// Hash functor for unordered containers.
struct CoalitionHash {
  size_t operator()(const Coalition& c) const { return c.Hash(); }
};

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_COALITION_H_
