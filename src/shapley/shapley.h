// Classical Shapley value over an arbitrary black-box utility function:
// exact subset enumeration for small player sets and permutation-sampling
// Monte Carlo for large ones. Both are the building blocks of FedSV
// (Def. 2) and of the ground-truth evaluations in the experiments.
#ifndef COMFEDSV_SHAPLEY_SHAPLEY_H_
#define COMFEDSV_SHAPLEY_SHAPLEY_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/vector.h"
#include "shapley/coalition.h"

namespace comfedsv {

/// Black-box coalition utility. Implementations should memoize internally
/// if evaluations are expensive (RoundUtility does).
using UtilityFn = std::function<double(const Coalition&)>;

/// Exact Shapley values of `players` (a subset of the universe) by full
/// subset enumeration: 2^|players| utility evaluations.
///
/// Returns a vector indexed by universe client id; non-players get 0.
/// Fails with kInvalidArgument if |players| > max_players (the 2^m blowup
/// guard).
Result<Vector> ExactShapley(int universe_size,
                            const std::vector<int>& players,
                            const UtilityFn& utility, int max_players = 25);

/// Permutation-sampling Monte-Carlo Shapley estimate (Castro et al. /
/// Maleki et al., the estimator in Sec. VI-E): averages marginal
/// contributions along `num_permutations` random orderings of `players`.
/// Unbiased; O(num_permutations * |players|) utility evaluations.
Result<Vector> MonteCarloShapley(int universe_size,
                                 const std::vector<int>& players,
                                 const UtilityFn& utility,
                                 int num_permutations, Rng* rng);

/// The paper's default permutation budget O(K log K) for a K-player game
/// (Maleki et al. bound referenced in Sec. VI-E), floored at 8.
int DefaultPermutationBudget(int num_players);

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_SHAPLEY_H_
