// Classical Shapley value over an arbitrary black-box utility function:
// exact subset enumeration for small player sets and permutation-sampling
// Monte Carlo for large ones. Both are the building blocks of FedSV
// (Def. 2) and of the ground-truth evaluations in the experiments.
#ifndef COMFEDSV_SHAPLEY_SHAPLEY_H_
#define COMFEDSV_SHAPLEY_SHAPLEY_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/vector.h"
#include "shapley/coalition.h"
#include "shapley/sampler.h"

namespace comfedsv {

/// Black-box coalition utility. Implementations should memoize internally
/// if evaluations are expensive (RoundUtility does). When a ThreadPool is
/// passed to the estimators below, the utility must be safe to call from
/// several threads at once (RoundUtility is).
using UtilityFn = std::function<double(const Coalition&)>;

/// Optional batch-prefetch hook: the estimators call it with the
/// coalitions they are about to query (in chunks, in deterministic
/// submission order) before any per-coalition utility call, so a batched
/// evaluator (RoundUtility::EvaluateBatch) can compute them all with a
/// few passes over the test set and serve the per-coalition calls from
/// cache. Purely an acceleration hint: results must be identical with or
/// without it.
using UtilityPrefetchFn = std::function<void(const std::vector<Coalition>&)>;

/// Default cap on |players| for exact enumeration (the 2^m blowup guard).
inline constexpr int kDefaultMaxExactPlayers = 25;

/// Exact Shapley values of `players` (a subset of the universe) by full
/// subset enumeration: 2^|players| utility evaluations. With `pool`, the
/// subset evaluations run in parallel; each subset writes its own slot,
/// so the result is bit-identical for any thread count.
///
/// Returns a vector indexed by universe client id; non-players get 0.
/// Fails with kInvalidArgument if |players| > max_players (the 2^m blowup
/// guard).
Result<Vector> ExactShapley(int universe_size,
                            const std::vector<int>& players,
                            const UtilityFn& utility,
                            int max_players = kDefaultMaxExactPlayers,
                            ThreadPool* pool = nullptr,
                            const UtilityPrefetchFn& prefetch = nullptr);

/// Permutation-sampling Monte-Carlo Shapley estimate (Castro et al. /
/// Maleki et al., the estimator in Sec. VI-E): averages marginal
/// contributions along `num_permutations` orderings of `players` drawn
/// by `sampler` (shapley/sampler.h; uniform IID by default — unbiased,
/// O(num_permutations * |players|) utility evaluations; antithetic and
/// stratified stay unbiased at lower variance; truncated walks trade a
/// tolerance-bounded bias for skipping the tail's loss calls).
///
/// All orderings are drawn from `rng` up front on the calling thread;
/// with `pool`, their marginal-contribution walks then run in parallel
/// and per-permutation deltas are reduced in permutation order — the
/// estimate is bit-identical to the single-threaded one. Truncated walks
/// proceed position-by-position in batched waves instead (each wave is
/// one prefetch submission); `pool` then only parallelizes inside the
/// batched evaluator, and the result is thread-count invariant by
/// construction.
///
/// With `sampler.adaptive.enabled`, the budget (num_permutations * m
/// marginal samples) is instead spent adaptively over the (player,
/// coalition-size) cell grid: pilot permutation walks (drawn by
/// `sampler.kind`) seed per-cell Welford statistics, then the remaining
/// samples go out in Neyman-style reallocation waves that chase cell
/// variance (shapley/budget_allocator.h). Every random draw and every
/// allocation decision happens on the calling thread in fixed cell/wave
/// order — `pool` only parallelizes inside the prefetch evaluator — so
/// the adaptive estimate is also bit-identical across thread counts.
/// phi_i = (1/m) sum_s cellmean(i, s) stays unbiased: each cell mean
/// averages uniform size-s coalition draws, and a final coverage pass
/// guarantees no cell is left empty. Budgets below 2*m permutations fall
/// back to the plain (non-adaptive) sampler; truncation is ignored on
/// the adaptive path (orderings are uniform, walks never truncate).
Result<Vector> MonteCarloShapley(int universe_size,
                                 const std::vector<int>& players,
                                 const UtilityFn& utility,
                                 int num_permutations, Rng* rng,
                                 ThreadPool* pool = nullptr,
                                 const UtilityPrefetchFn& prefetch = nullptr,
                                 const SamplerConfig& sampler = {});

/// The paper's default permutation budget O(K log K) for a K-player game
/// (Maleki et al. bound referenced in Sec. VI-E), floored at 8.
int DefaultPermutationBudget(int num_players);

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_SHAPLEY_H_
