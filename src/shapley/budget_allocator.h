// Adaptive permutation-budget allocation (the estimator tier of
// ROADMAP item 5, after the sampling-based-approximation survey,
// arXiv 2504.16668, and Castro et al.'s optimum stratified allocation).
//
// Every Monte-Carlo Shapley estimate averages marginal contributions,
// and the per-cell variance of those marginals is wildly heterogeneous:
// in a stratified decomposition by (player, coalition size), most cells
// of a realistic game are nearly deterministic (the additive part of the
// utility is constant within a cell) while a handful of synergy-carrying
// cells hold almost all of the estimator variance. Spending the
// permutation budget uniformly — what every PR-4 sampler does — wastes
// most of its loss calls re-measuring cells that were already settled
// after two samples.
//
// AdaptiveBudgetAllocator keeps running Welford mean/variance per cell
// and plans fixed-size waves of additional samples with a Neyman-style
// allocation: each wave first tops every under-sampled cell up to
// `min_cell_samples` (variance is meaningless before that), then splits
// the remainder proportionally to the cells' standard deviations
// (Neyman's optimum for equally weighted strata), rounding by largest
// remainder with index-order tie-breaks. Every decision is a pure
// function of the recorded samples and the wave budget, and callers
// record samples in a fixed sequential order — so allocation is
// bit-identical for any thread count (the determinism contract of
// tests/determinism_test.cc).
//
// The allocator is estimator-agnostic: MonteCarloShapley uses cells
// (player i, stratum |S| = s); FedSvEvaluator gets a fresh allocator per
// round (per-round, per-stratum stats); SampledUtilityRecorder keeps one
// across rounds with per-position cells to steer its surrogate audits.
#ifndef COMFEDSV_SHAPLEY_BUDGET_ALLOCATOR_H_
#define COMFEDSV_SHAPLEY_BUDGET_ALLOCATOR_H_

#include <cstdint>
#include <vector>

namespace comfedsv {

/// Numerically stable running mean/variance (Welford's algorithm).
struct WelfordStat {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean

  void Add(double value) {
    ++count;
    const double delta = value - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (value - mean);
  }

  /// Sample variance; 0 until two samples exist.
  double Variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }
  double StdDev() const;
};

/// Knobs of the adaptive estimator (embedded in SamplerConfig).
struct AdaptiveBudgetConfig {
  /// Master switch: off reproduces the PR-4 samplers untouched.
  bool enabled = false;
  /// Full permutation walks spent on the pilot phase before the first
  /// reallocation wave; 0 = auto (max(2, budget / 8)).
  int pilot_permutations = 0;
  /// Number of fixed-size reallocation waves the post-pilot budget is
  /// split into. More waves react faster but re-plan more often.
  int waves = 4;
  /// Samples a cell needs before its variance is trusted; cells below
  /// this are topped up first in every wave plan.
  int min_cell_samples = 2;
};

/// Per-cell Welford statistics plus deterministic Neyman wave planning.
class AdaptiveBudgetAllocator {
 public:
  /// `num_cells` > 0 strata; `min_cell_samples` >= 1 is the trust floor
  /// used by PlanWave's top-up pass.
  AdaptiveBudgetAllocator(int num_cells, int min_cell_samples);

  /// Records one marginal-contribution sample for `cell`. Call in a
  /// deterministic order (the wave read-back order).
  void Record(int cell, double value);

  /// Plans the next wave: how many new samples each cell receives out of
  /// `wave_budget` (>= 0; 0 or negative plans nothing). Deterministic:
  /// (1) cells with fewer than `min_cell_samples` samples are topped up
  /// breadth-first (every cell reaches one sample before any gets its
  /// second, index order within a level) while budget lasts; (2) the
  /// remainder is split proportionally to cell standard deviations
  /// plus an exploration floor of a quarter of the mean deviation —
  /// observed-zero variance is weak evidence of determinism, so every
  /// cell's count keeps growing with budget (largest-remainder
  /// rounding, ties to the lower index); (3) if every known cell has
  /// zero variance the remainder is spread evenly instead. Never
  /// returns more than `wave_budget` total samples, so budgets smaller
  /// than the number of cells are safe (some cells simply get none).
  std::vector<int> PlanWave(int wave_budget) const;

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const WelfordStat& cell(int index) const;
  int64_t total_samples() const { return total_samples_; }

  /// Raw per-cell stats, for checkpoint serialization (io layer) and
  /// diagnostics. RestoreCells rejects a size mismatch by returning
  /// false (the caller maps that to an InvalidArgument Status).
  const std::vector<WelfordStat>& cells() const { return cells_; }
  bool RestoreCells(std::vector<WelfordStat> cells);

 private:
  std::vector<WelfordStat> cells_;
  int min_cell_samples_;
  int64_t total_samples_ = 0;
};

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_BUDGET_ALLOCATOR_H_
