#include "shapley/fedsv.h"

#include "common/check.h"
#include "shapley/shapley.h"
#include "shapley/utility.h"

namespace comfedsv {

FedSvEvaluator::FedSvEvaluator(const Model* model, const Dataset* test_data,
                               int num_clients, FedSvConfig config,
                               ExecutionContext* ctx)
    : model_(model),
      test_data_(test_data),
      config_(config),
      ctx_(ctx),
      values_(num_clients),
      rng_(config.seed) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK_GT(num_clients, 0);
}

FedSvEvaluatorState FedSvEvaluator::SaveState() const {
  FedSvEvaluatorState state;
  state.values = values_;
  state.rng = rng_.SaveState();
  state.loss_calls = loss_calls_;
  return state;
}

Status FedSvEvaluator::RestoreState(const FedSvEvaluatorState& state) {
  if (state.values.size() != values_.size()) {
    return Status::InvalidArgument(
        "FedSV state has a different client count");
  }
  if (state.loss_calls < 0) {
    return Status::InvalidArgument("FedSV state loss_calls negative");
  }
  values_ = state.values;
  rng_ = Rng::FromState(state.rng);
  loss_calls_ = state.loss_calls;
  return Status::Ok();
}

void FedSvEvaluator::OnRound(const RoundRecord& record) {
  // Bernoulli-style selectors can produce rounds in which no client is
  // selected; the restricted Shapley game then has no players and every
  // client's contribution is zero, so the round is skipped instead of
  // tripping the estimators' "no players" guard.
  if (record.selected.empty()) return;
  const int n = static_cast<int>(values_.size());
  RoundUtility utility(model_, test_data_, &record, &loss_calls_, ctx_,
                       &stats_);
  UtilityFn fn = [&utility](const Coalition& c) {
    return utility.Utility(c);
  };
  // The estimators announce their coalition sets up front; the batched
  // engine evaluates them in a few passes over the test set and the
  // per-coalition calls below become cache hits.
  UtilityPrefetchFn prefetch = [&utility](const std::vector<Coalition>& cs) {
    utility.EvaluateBatch(cs);
  };

  ThreadPool* pool = ctx_ != nullptr ? &ctx_->pool() : nullptr;
  Result<Vector> round_values = Status::Internal("unset");
  if (config_.mode == FedSvConfig::Mode::kExact) {
    round_values = ExactShapley(n, record.selected, fn,
                                kDefaultMaxExactPlayers, pool, prefetch);
  } else {
    int budget = config_.permutations_per_round > 0
                     ? config_.permutations_per_round
                     : RoundBudgetForSampler(
                           config_.sampler,
                           DefaultPermutationBudget(
                               static_cast<int>(record.selected.size())));
    round_values = MonteCarloShapley(n, record.selected, fn, budget, &rng_,
                                     pool, prefetch, config_.sampler);
  }
  COMFEDSV_CHECK_OK(round_values.status());
  values_ += round_values.value();
}

}  // namespace comfedsv
