#include "shapley/sampler.h"

#include <algorithm>

#include "common/check.h"

namespace comfedsv {

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kUniformIid:
      return "uniform";
    case SamplerKind::kAntithetic:
      return "antithetic";
    case SamplerKind::kStratified:
      return "stratified";
    case SamplerKind::kTruncated:
      return "truncated";
  }
  return "?";
}

int RoundBudgetForSampler(const SamplerConfig& config, int budget) {
  // Floor before pairing: a 0/negative budget (degenerate config or an
  // aggressive adaptive split) must still produce at least one draw, or
  // the estimators' positive-budget guard aborts downstream.
  budget = std::max(budget, 1);
  if (config.kind == SamplerKind::kAntithetic && (budget % 2) != 0) {
    return budget + 1;
  }
  return budget;
}

std::vector<std::vector<int>> DrawOrderings(const SamplerConfig& config,
                                            const std::vector<int>& players,
                                            int count, Rng* rng,
                                            bool reset_between_draws) {
  COMFEDSV_CHECK(rng != nullptr);
  COMFEDSV_CHECK_GT(count, 0);
  COMFEDSV_CHECK(!players.empty());
  const size_t m = players.size();

  std::vector<std::vector<int>> orders;
  orders.reserve(count);

  // One base draw == one Rng::Shuffle, in both legacy conventions, so
  // the uniform mode reproduces the pre-sampler sequences exactly.
  std::vector<int> working(players);
  auto draw_base = [&]() -> const std::vector<int>& {
    if (reset_between_draws) working = players;
    rng->Shuffle(&working);
    return working;
  };

  const size_t target = static_cast<size_t>(count);
  switch (config.kind) {
    case SamplerKind::kUniformIid:
    case SamplerKind::kTruncated:
      // Truncation changes how orderings are *walked*, not how they are
      // drawn: the orderings stay uniform IID.
      while (orders.size() < target) orders.push_back(draw_base());
      break;

    case SamplerKind::kAntithetic:
      while (orders.size() < target) {
        const std::vector<int>& base = draw_base();
        orders.push_back(base);
        if (orders.size() < target) {
          orders.emplace_back(base.rbegin(), base.rend());
        }
      }
      break;

    case SamplerKind::kStratified:
      while (orders.size() < target) {
        // Copy: `working` must stay untouched for the next base draw in
        // the chained (reset_between_draws = false) convention.
        const std::vector<int> base = draw_base();
        for (size_t r = 0; r < m && orders.size() < target; ++r) {
          std::vector<int> rotation(m);
          for (size_t i = 0; i < m; ++i) {
            rotation[i] = base[(r + i) % m];
          }
          orders.push_back(std::move(rotation));
        }
      }
      break;
  }
  return orders;
}

}  // namespace comfedsv
