#include "shapley/coalition.h"

#include <bit>

#include "common/check.h"

namespace comfedsv {

Coalition::Coalition(int universe_size)
    : universe_size_(universe_size),
      words_((universe_size + 63) / 64, 0ULL) {
  COMFEDSV_CHECK_GE(universe_size, 0);
}

Coalition Coalition::FromMembers(int universe_size,
                                 const std::vector<int>& members) {
  Coalition c(universe_size);
  for (int m : members) c.Add(m);
  return c;
}

Coalition Coalition::Full(int universe_size) {
  Coalition c(universe_size);
  for (int i = 0; i < universe_size; ++i) c.Add(i);
  return c;
}

void Coalition::CheckClient(int client) const {
  COMFEDSV_CHECK_GE(client, 0);
  COMFEDSV_CHECK_LT(client, universe_size_);
}

void Coalition::Add(int client) {
  CheckClient(client);
  words_[client >> 6] |= (1ULL << (client & 63));
}

void Coalition::Remove(int client) {
  CheckClient(client);
  words_[client >> 6] &= ~(1ULL << (client & 63));
}

bool Coalition::Contains(int client) const {
  CheckClient(client);
  return (words_[client >> 6] >> (client & 63)) & 1ULL;
}

int Coalition::Count() const {
  int total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

bool Coalition::IsSubsetOf(const Coalition& other) const {
  COMFEDSV_CHECK_EQ(universe_size_, other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

std::vector<int> Coalition::Members() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEachMember([&out](int member) { out.push_back(member); });
  return out;
}

Coalition Coalition::With(int client) const {
  Coalition c = *this;
  c.Add(client);
  return c;
}

Coalition Coalition::Without(int client) const {
  Coalition c = *this;
  c.Remove(client);
  return c;
}

bool Coalition::operator<(const Coalition& other) const {
  if (universe_size_ != other.universe_size_) {
    return universe_size_ < other.universe_size_;
  }
  for (size_t i = words_.size(); i > 0; --i) {
    if (words_[i - 1] != other.words_[i - 1]) {
      return words_[i - 1] < other.words_[i - 1];
    }
  }
  return false;
}

size_t Coalition::Hash() const {
  // FNV-1a over the words plus the universe size.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  };
  mix(static_cast<uint64_t>(universe_size_));
  for (uint64_t w : words_) mix(w);
  return static_cast<size_t>(h);
}

}  // namespace comfedsv
