// Per-round utility evaluation (Sec. V of the paper):
//
//   U_t(S) = u_t(w_S^{t+1}),  u_t(w) = l(w^t; D_c) - l(w; D_c),
//   w_S^{t+1} = (1/|S|) sum_{k in S} w_k^{t+1},   U_t(empty) = 0.
//
// Evaluating u_t — one test-set loss — is the dominant cost of every
// valuation method, so the evaluator counts calls; the paper's complexity
// discussion (Sec. VII-D) and Fig. 8 are in units of these calls.
#ifndef COMFEDSV_SHAPLEY_UTILITY_H_
#define COMFEDSV_SHAPLEY_UTILITY_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "data/dataset.h"
#include "fl/round_record.h"
#include "models/model.h"
#include "shapley/coalition.h"

namespace comfedsv {

/// Evaluates coalition utilities for one round, memoizing by coalition so
/// repeated queries (e.g. shared Monte-Carlo prefixes) cost one test-loss
/// evaluation each. Holds references; the record, model and test set must
/// outlive it.
///
/// Thread-safe: concurrent Utility() calls from a ThreadPool are allowed.
/// The expensive test-loss evaluation runs outside the cache lock, so two
/// threads may race to compute the same coalition; the loss-call and
/// distinct-evaluation counters are incremented once per distinct
/// coalition (matching single-threaded accounting exactly), and the
/// cached value is deterministic either way.
class RoundUtility {
 public:
  /// `loss_calls` is an optional shared counter of test-loss evaluations,
  /// accumulated across rounds by the callers that own it.
  RoundUtility(const Model* model, const Dataset* test_data,
               const RoundRecord* record, int64_t* loss_calls = nullptr);

  /// U_t(S). The empty coalition has utility 0 by convention
  /// (u_t(w^t) = 0).
  double Utility(const Coalition& coalition);

  /// Number of distinct coalitions evaluated so far this round.
  int64_t distinct_evaluations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return distinct_evaluations_;
  }

 private:
  const Model* model_;
  const Dataset* test_data_;
  const RoundRecord* record_;
  int64_t* loss_calls_;
  int64_t distinct_evaluations_ = 0;
  mutable std::mutex mu_;  // guards cache_ and the counters
  std::unordered_map<Coalition, double, CoalitionHash> cache_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_UTILITY_H_
