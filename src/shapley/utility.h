// Per-round utility evaluation (Sec. V of the paper):
//
//   U_t(S) = u_t(w_S^{t+1}),  u_t(w) = l(w^t; D_c) - l(w; D_c),
//   w_S^{t+1} = (1/|S|) sum_{k in S} w_k^{t+1},   U_t(empty) = 0.
//
// Evaluating u_t — one test-set loss — is the dominant cost of every
// valuation method, so the evaluator counts calls; the paper's complexity
// discussion (Sec. VII-D) and Fig. 8 are in units of these calls.
//
// Batched engine: callers that know their coalition set up front (the
// recorders, ExactShapley / MonteCarloShapley via the prefetch hook)
// submit it to EvaluateBatch, which dedups, forms coalition aggregates
// incrementally, and evaluates whole chunks with one Model::BatchLoss
// pass over the test set instead of one Model::Loss per coalition —
// the wall-clock bottleneck behind the paper's Fig. 8 comparison.
#ifndef COMFEDSV_SHAPLEY_UTILITY_H_
#define COMFEDSV_SHAPLEY_UTILITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/execution_context.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "fl/round_record.h"
#include "models/model.h"
#include "shapley/coalition.h"

namespace comfedsv {

/// Measured evaluation-cost accounting for one estimator run. Filled by
/// RoundUtility (counting fields) and the surrogate-screening recorder
/// path (skip fields); surfaced through FedSvOutput / ComFedSvOutput so
/// benches report measured counts instead of re-deriving them.
struct UtilityStats {
  /// Test-loss evaluations actually spent: one per distinct non-empty
  /// coalition measured (the unit of the paper's Fig. 8 cost axis).
  int64_t loss_calls = 0;
  /// Model::BatchLoss passes issued by the batched engine (each covers a
  /// chunk of coalitions with one sweep over the test set).
  int64_t batched_calls = 0;
  /// Cache hits: queries answered from the per-round memo without a loss
  /// call (repeated Monte-Carlo draws, batch re-submissions).
  int64_t memo_hits = 0;
  /// Distinct non-empty coalitions evaluated (= loss_calls unless a
  /// surrogate recorded predicted values without measuring).
  int64_t distinct_coalitions = 0;
  /// Coalitions recorded at their factor-predicted utility with the real
  /// loss call skipped (surrogate screening only).
  int64_t surrogate_skips = 0;
  /// Accumulated worst-case absolute error of the skipped recordings:
  /// each skip adds its confidence-scaled audited error estimate. The
  /// screening bias-bound contract (README): the total absolute
  /// perturbation of recorded utilities is <= this value.
  double surrogate_bias_bound = 0.0;

  void MergeFrom(const UtilityStats& other) {
    loss_calls += other.loss_calls;
    batched_calls += other.batched_calls;
    memo_hits += other.memo_hits;
    distinct_coalitions += other.distinct_coalitions;
    surrogate_skips += other.surrogate_skips;
    surrogate_bias_bound += other.surrogate_bias_bound;
  }
};

/// Forms coalition parameter averages incrementally. Keeps the ascending
/// chain of partial sums of the previous coalition's members; a new
/// coalition reuses the longest shared ascending prefix and extends it
/// with one Axpy per remaining member, instead of re-summing all |S|
/// local models. Because every partial sum adds members in ascending
/// order — the order RoundUtility::Utility sums them in — the produced
/// aggregates are bit-identical to the sequential path.
///
/// Consecutive queries in subset-mask or sorted order share long
/// prefixes, so amortized cost per coalition is O(1) Axpys.
class CoalitionAggregator {
 public:
  /// `record` must outlive the aggregator.
  explicit CoalitionAggregator(const RoundRecord* record);

  /// Writes the member mean (ascending-order sum scaled by 1/|S|) into
  /// `out`, a buffer of record->global_before.size() doubles. The
  /// coalition must be non-empty.
  void MeanInto(const Coalition& coalition, double* out);

 private:
  const RoundRecord* record_;
  size_t dim_;
  std::vector<int> chain_;     // ascending member chain of the last query
  size_t depth_ = 0;           // live prefix length of chain_/partials_
  std::vector<std::vector<double>> partials_;  // partials_[k]: sum of
                                               // chain_[0..k]
  std::vector<int> members_scratch_;
};

/// Evaluates coalition utilities for one round, memoizing by coalition so
/// repeated queries (e.g. shared Monte-Carlo prefixes) cost one test-loss
/// evaluation each. Holds references; the record, model, test set and
/// context must outlive it.
///
/// Thread-safe: concurrent Utility() calls from a ThreadPool are allowed.
/// The expensive test-loss evaluation runs outside the cache lock, so two
/// threads may race to compute the same coalition; the loss-call and
/// distinct-evaluation counters are incremented once per distinct
/// coalition (matching single-threaded accounting exactly), and the
/// cached value is deterministic either way.
class RoundUtility {
 public:
  /// `loss_calls` is an optional shared counter of test-loss evaluations,
  /// accumulated across rounds by the callers that own it. `ctx`
  /// (optional) parallelizes EvaluateBatch; a null context evaluates
  /// batches inline. `stats` (optional) accumulates the full measured
  /// accounting (loss calls, batch passes, memo hits) across rounds;
  /// its loss_calls field advances in lockstep with `loss_calls`.
  RoundUtility(const Model* model, const Dataset* test_data,
               const RoundRecord* record, int64_t* loss_calls = nullptr,
               ExecutionContext* ctx = nullptr, UtilityStats* stats = nullptr);

  /// Records a utility value supplied by a surrogate predictor instead of
  /// a measurement: future Utility()/EvaluateBatch queries for this
  /// coalition are cache hits at `value`, and no loss call is ever spent
  /// on it. Counts as a distinct coalition and a surrogate skip, with
  /// `bias_bound` added to the accumulated skip-bias bound. No-op if the
  /// coalition was already evaluated.
  void RecordPredicted(const Coalition& coalition, double value,
                       double bias_bound);

  /// U_t(S). The empty coalition has utility 0 by convention
  /// (u_t(w^t) = 0).
  double Utility(const Coalition& coalition);

  /// Evaluates (and caches) every coalition in `coalitions` through the
  /// batched engine: dedups against the cache and within the batch
  /// (preserving submission order), forms aggregates incrementally, and
  /// computes whole chunks with one Model::BatchLoss pass over the test
  /// set each. Subsequent Utility() calls are cache hits. Counters
  /// advance once per distinct coalition, exactly as if each had been
  /// evaluated singly; cached values are bit-identical to the unbatched
  /// path for any thread count. Call from one thread (typically before
  /// fanning out readers).
  void EvaluateBatch(const std::vector<Coalition>& coalitions);

  /// Number of distinct coalitions evaluated so far this round.
  int64_t distinct_evaluations() const {
    MutexLock lock(mu_);
    return distinct_evaluations_;
  }

 private:
  const Model* model_;
  const Dataset* test_data_;
  const RoundRecord* record_;
  mutable Mutex mu_;  // guards the memo table and every counter
  // Caller-owned counter/stats sinks: the pointers are set once in the
  // constructor, but the pointees are only ever mutated with mu_ held.
  int64_t* loss_calls_ PT_GUARDED_BY(mu_);
  ExecutionContext* ctx_;  // not owned; null = inline batch evaluation
  UtilityStats* stats_ PT_GUARDED_BY(mu_);  // not owned; optional
  int64_t distinct_evaluations_ GUARDED_BY(mu_) = 0;
  std::unordered_map<Coalition, double, CoalitionHash> cache_
      GUARDED_BY(mu_);
};

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_UTILITY_H_
