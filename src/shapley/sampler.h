// Permutation-sampling strategies for the Monte-Carlo Shapley estimators
// (the Sec. VI-E / Sec. VII-D machinery). Every estimator in the library
// walks marginal contributions along sampled orderings; since PR 2/3 made
// each utility evaluation cheap, the estimator variance *per loss call*
// is the dominant accuracy knob. This module makes the sampling strategy
// pluggable:
//
//   * kUniformIid  — independent uniform permutations (the classical
//                    Castro et al. estimator; the default and the
//                    pre-existing behavior, bit for bit).
//   * kAntithetic  — forward/reverse pairs: each drawn permutation is
//                    followed by its reversal. Positions p and m-1-p are
//                    exchanged within a pair, so the positional component
//                    of the marginal-contribution variance (dominant for
//                    games with curvature in |S|) cancels. Unbiased.
//   * kStratified  — stratified by position: each drawn permutation is
//                    expanded into its m cyclic rotations, so within one
//                    block every player occupies every position exactly
//                    once (a cyclic Latin square). Each rotation of a
//                    uniform permutation is marginally uniform, so the
//                    estimator stays unbiased while the per-player
//                    position histogram is exactly flat per block.
//   * kTruncated   — TMC-style truncated walks (Ghorbani & Zou; Wang et
//                    al.'s federated variant): orderings are uniform IID,
//                    but a permutation's marginal-contribution scan stops
//                    once the running utility is within
//                    `truncation_tolerance` of the grand-coalition
//                    utility; the tail's players get zero marginal and —
//                    crucially — the tail's loss calls are never spent.
//                    Introduces bias bounded by the tolerance per
//                    truncated permutation.
//
// All orderings are drawn up front on the calling thread from the
// caller's Rng, so which coalitions get evaluated depends only on the
// seed — never on thread scheduling (the bit-identical-across-thread-
// counts invariant of tests/determinism_test.cc).
#ifndef COMFEDSV_SHAPLEY_SAMPLER_H_
#define COMFEDSV_SHAPLEY_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "shapley/budget_allocator.h"

namespace comfedsv {

/// Which permutation-sampling strategy an estimator uses.
enum class SamplerKind {
  kUniformIid,
  kAntithetic,
  kStratified,
  kTruncated,
};

/// Sampling-strategy configuration, embedded in FedSvConfig and
/// ComFedSvConfig.
struct SamplerConfig {
  SamplerKind kind = SamplerKind::kUniformIid;
  /// kTruncated only: a permutation's scan stops once
  /// |U(grand) - U(prefix)| <= truncation_tolerance. 0 truncates only on
  /// exact saturation (a plateau), which is already enough for games
  /// whose utility caps out early.
  double truncation_tolerance = 1e-3;

  /// Adaptive Neyman budget allocation (shapley/budget_allocator.h).
  /// When enabled, MonteCarloShapley (and the per-round FedSV estimate)
  /// spends the permutation budget in reallocation waves steered toward
  /// the highest-variance (player, |S|) cells instead of uniformly;
  /// `kind` then only selects how the pilot walks are drawn. Budgets
  /// below 2 * |players| permutations fall back to the plain sampler
  /// (too small to cover the cell grid).
  AdaptiveBudgetConfig adaptive;

  /// Utility-surrogate screening for the adaptive SampledUtilityRecorder
  /// path (streaming ComFedSV): a coalition whose factor-predicted
  /// marginal is confidently below `screen_threshold` is recorded at the
  /// predicted value without spending its real BatchLoss call. 0
  /// disables screening. "Confidently" means the surrogate's audited
  /// mean absolute error, scaled by `screen_confidence`, still fits
  /// under the threshold together with the predicted marginal — the
  /// loss call is spent exactly when the surrogate is uncertain.
  double screen_threshold = 0.0;
  /// Multiplier on the surrogate's audited mean absolute error in the
  /// skip test (larger = more conservative screening).
  double screen_confidence = 3.0;
  /// Every k-th skip-eligible coalition is measured anyway (an audit):
  /// the realized |predicted - measured| gap feeds the error estimate
  /// and is the *measured* part of the bias-bound contract.
  int screen_audit_every = 8;
  /// Audits required before any skip is allowed (the bootstrap spend
  /// while the surrogate is still unproven).
  int screen_min_audits = 4;
};

/// Human-readable sampler name (bench/JSON labels).
const char* SamplerKindName(SamplerKind kind);

/// Rounds a *default-resolved* permutation budget up to the sampler's
/// natural pairing size: antithetic draws come in forward/reverse pairs,
/// so an odd budget would leave one draw unpaired and forfeit part of
/// the cancellation. Explicit user budgets are honored as given (an
/// unpaired draw is still unbiased, just higher-variance). Non-positive
/// budgets are floored at one draw (two for antithetic) so degenerate
/// configurations never reach the estimators' positive-budget guard.
int RoundBudgetForSampler(const SamplerConfig& config, int budget);

/// Draws `count` orderings of `players` from `rng` according to
/// `config.kind`. Antithetic reversals and stratified rotations are
/// derived from each drawn base permutation without consuming extra
/// randomness; kTruncated draws plain uniform orderings (truncation is a
/// walk-time behavior, applied by the estimator).
///
/// `reset_between_draws` selects between the two legacy uniform-draw
/// conventions the library already shipped — both must keep reproducing
/// their historical sequences bit for bit:
///   * false (MonteCarloShapley): one working vector initialized from
///     `players` is re-shuffled in place for every base draw;
///   * true (SampledUtilityRecorder): the working vector is reset to
///     `players` before each base draw, matching Rng::Permutation.
/// Every base draw consumes exactly one Rng::Shuffle either way.
std::vector<std::vector<int>> DrawOrderings(const SamplerConfig& config,
                                            const std::vector<int>& players,
                                            int count, Rng* rng,
                                            bool reset_between_draws = false);

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_SAMPLER_H_
