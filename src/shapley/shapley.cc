#include "shapley/shapley.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/combinatorics.h"

namespace comfedsv {

Result<Vector> ExactShapley(int universe_size,
                            const std::vector<int>& players,
                            const UtilityFn& utility, int max_players) {
  const int m = static_cast<int>(players.size());
  if (m == 0) return Status::InvalidArgument("no players");
  if (m > max_players) {
    return Status::InvalidArgument(
        "too many players for exact enumeration");
  }

  // Evaluate the utility of every subset of `players`, indexed by the
  // local bitmask over positions in `players`.
  const uint32_t num_subsets = 1u << m;
  std::vector<double> subset_utility(num_subsets);
  for (uint32_t mask = 0; mask < num_subsets; ++mask) {
    Coalition c(universe_size);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(players[p]);
    }
    subset_utility[mask] = utility(c);
  }

  // phi_i = (1/m) sum_{S not containing i} [1 / C(m-1, |S|)]
  //         * [U(S + i) - U(S)].
  Vector values(universe_size);
  for (int p = 0; p < m; ++p) {
    const uint32_t bit = 1u << p;
    double acc = 0.0;
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      const double weight = 1.0 / Binomial(m - 1, s);
      acc += weight * (subset_utility[mask | bit] - subset_utility[mask]);
    }
    values[players[p]] = acc / static_cast<double>(m);
  }
  return values;
}

Result<Vector> MonteCarloShapley(int universe_size,
                                 const std::vector<int>& players,
                                 const UtilityFn& utility,
                                 int num_permutations, Rng* rng) {
  if (players.empty()) return Status::InvalidArgument("no players");
  if (num_permutations <= 0) {
    return Status::InvalidArgument("num_permutations must be positive");
  }
  COMFEDSV_CHECK(rng != nullptr);

  const int m = static_cast<int>(players.size());
  Vector values(universe_size);
  std::vector<int> order(players);
  for (int sample = 0; sample < num_permutations; ++sample) {
    rng->Shuffle(&order);
    Coalition prefix(universe_size);
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    for (int pos = 0; pos < m; ++pos) {
      prefix.Add(order[pos]);
      const double cur_utility = utility(prefix);
      values[order[pos]] += cur_utility - prev_utility;
      prev_utility = cur_utility;
    }
  }
  values.Scale(1.0 / static_cast<double>(num_permutations));
  return values;
}

int DefaultPermutationBudget(int num_players) {
  COMFEDSV_CHECK_GT(num_players, 0);
  const double suggested =
      std::ceil(static_cast<double>(num_players) *
                std::log(static_cast<double>(num_players) + 1.0));
  return std::max(8, static_cast<int>(suggested));
}

}  // namespace comfedsv
