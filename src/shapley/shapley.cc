#include "shapley/shapley.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/combinatorics.h"

namespace comfedsv {

namespace {

// Chunk size for prefetch submissions: bounds transient Coalition
// storage while keeping BatchLoss chunks full.
constexpr size_t kPrefetchChunk = 8192;

}  // namespace

Result<Vector> ExactShapley(int universe_size,
                            const std::vector<int>& players,
                            const UtilityFn& utility, int max_players,
                            ThreadPool* pool,
                            const UtilityPrefetchFn& prefetch) {
  const int m = static_cast<int>(players.size());
  if (m == 0) return Status::InvalidArgument("no players");
  if (m > max_players) {
    return Status::InvalidArgument(
        "too many players for exact enumeration");
  }

  // Evaluate the utility of every subset of `players`, indexed by the
  // local bitmask over positions in `players`. Each subset writes its own
  // slot, so the parallel and sequential evaluations agree bit for bit.
  const uint32_t num_subsets = 1u << m;
  auto subset_coalition = [&](uint32_t mask) {
    Coalition c(universe_size);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(players[p]);
    }
    return c;
  };

  // Hand the whole subset lattice to the batched evaluator first (in
  // ascending-mask chunks): consecutive masks share ascending prefixes,
  // which is exactly the access pattern the incremental aggregator and
  // the BatchLoss engine amortize best.
  if (prefetch != nullptr) {
    std::vector<Coalition> batch;
    batch.reserve(std::min<size_t>(num_subsets - 1, kPrefetchChunk));
    for (uint32_t mask = 1; mask < num_subsets; ++mask) {
      batch.push_back(subset_coalition(mask));
      if (batch.size() == kPrefetchChunk) {
        prefetch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) prefetch(batch);
  }

  std::vector<double> subset_utility(num_subsets);
  auto eval_subset = [&](int mask_index) {
    const uint32_t mask = static_cast<uint32_t>(mask_index);
    subset_utility[mask] = utility(subset_coalition(mask));
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int>(num_subsets), eval_subset);
  } else {
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      eval_subset(static_cast<int>(mask));
    }
  }

  // phi_i = (1/m) sum_{S not containing i} [1 / C(m-1, |S|)]
  //         * [U(S + i) - U(S)].
  // The weight depends only on |S|: hoist the divisions out of the
  // 2^m * m mask loop (as comfedsv_values.cc::ExactSumOverCoalitions
  // does). Same operations per term, so the output is bit-identical.
  std::vector<double> size_weight(m);
  for (int s = 0; s < m; ++s) size_weight[s] = 1.0 / Binomial(m - 1, s);
  Vector values(universe_size);
  for (int p = 0; p < m; ++p) {
    const uint32_t bit = 1u << p;
    double acc = 0.0;
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      acc += size_weight[s] *
             (subset_utility[mask | bit] - subset_utility[mask]);
    }
    values[players[p]] = acc / static_cast<double>(m);
  }
  return values;
}

namespace {

// TMC-style truncated walks (SamplerKind::kTruncated). The scan proceeds
// position-by-position in lockstep across all permutations: each wave
// collects the next prefix of every still-active walk, submits the whole
// wave to the batched evaluator, then reads the utilities back in
// permutation order and applies the truncation rule. Tail prefixes of
// truncated walks are never evaluated — that is the loss-call saving —
// and every decision depends only on utilities, so the result is
// identical for any thread count.
Vector TruncatedWalkEstimate(int universe_size,
                             const std::vector<int>& players,
                             const UtilityFn& utility,
                             const std::vector<std::vector<int>>& orders,
                             double tolerance,
                             const UtilityPrefetchFn& prefetch) {
  const int m = static_cast<int>(players.size());
  const int num_permutations = static_cast<int>(orders.size());

  // The truncation reference U(grand): every permutation's final prefix,
  // so in the untruncated estimator it is evaluated anyway.
  Coalition grand = Coalition::FromMembers(universe_size, players);
  if (prefetch != nullptr) prefetch({grand});
  const double grand_utility = utility(grand);

  struct WalkState {
    Coalition prefix;
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    bool active = true;
  };
  std::vector<WalkState> walks(num_permutations);
  for (WalkState& w : walks) w.prefix = Coalition(universe_size);

  std::vector<Vector> deltas(num_permutations,
                             Vector(universe_size));  // zero-initialized
  std::vector<Coalition> wave;
  for (int pos = 0; pos < m; ++pos) {
    wave.clear();
    for (int sample = 0; sample < num_permutations; ++sample) {
      if (!walks[sample].active) continue;
      walks[sample].prefix.Add(orders[sample][pos]);
      wave.push_back(walks[sample].prefix);
    }
    if (wave.empty()) break;
    if (prefetch != nullptr) prefetch(wave);
    for (int sample = 0; sample < num_permutations; ++sample) {
      WalkState& w = walks[sample];
      if (!w.active) continue;
      const double cur_utility = utility(w.prefix);
      deltas[sample][orders[sample][pos]] = cur_utility - w.prev_utility;
      w.prev_utility = cur_utility;
      // Within tolerance of the grand coalition: the remaining tail's
      // marginals stay 0 (their deltas were zero-initialized) and its
      // prefixes are never submitted.
      if (std::abs(grand_utility - cur_utility) <= tolerance) {
        w.active = false;
      }
    }
  }

  Vector values(universe_size);
  for (int sample = 0; sample < num_permutations; ++sample) {
    values += deltas[sample];
  }
  values.Scale(1.0 / static_cast<double>(num_permutations));
  return values;
}

// Adaptive stratified estimator (SamplerConfig::adaptive). Cells are
// (player index p, coalition size s) -> p * m + s; a cell sample is the
// marginal U(S + p) - U(S) for a uniform size-s subset S of the other
// players, so phi_{players[p]} = (1/m) sum_s E[cell(p, s)] and the
// estimate from cell means is unbiased as long as every cell holds at
// least one sample (the coverage pass guarantees that). Pilot walks are
// full permutation walks — position pos of a walk is a valid uniform
// sample of cell (ord[pos], pos) — so pilot marginals seed the whole
// grid at m samples per walk. Waves then draw per-cell subsets in cell
// index order, submit each wave as one batched prefetch, and read the
// utilities back in the same order; every Rng draw and Welford update is
// on the calling thread, so the result is thread-count invariant.
Vector AdaptiveStratifiedEstimate(
    int universe_size, const std::vector<int>& players,
    const UtilityFn& utility,
    const std::vector<std::vector<int>>& pilot_orders, int64_t wave_marginals,
    const AdaptiveBudgetConfig& cfg, Rng* rng,
    const UtilityPrefetchFn& prefetch) {
  const int m = static_cast<int>(players.size());
  AdaptiveBudgetAllocator allocator(m * m, cfg.min_cell_samples);

  std::vector<int> index_of;  // player id -> position in `players`
  {
    int max_id = 0;
    for (int p : players) max_id = std::max(max_id, p);
    index_of.assign(static_cast<size_t>(max_id) + 1, -1);
    for (int p = 0; p < m; ++p) index_of[players[p]] = p;
  }

  // Pilot phase: plain permutation walks, batched through the prefetch
  // hook, read back sequentially so every marginal lands in its cell in
  // a fixed order.
  if (prefetch != nullptr && !pilot_orders.empty()) {
    std::vector<Coalition> batch;
    batch.reserve(std::min(pilot_orders.size() * m, kPrefetchChunk));
    for (const std::vector<int>& ord : pilot_orders) {
      Coalition prefix(universe_size);
      for (int member : ord) {
        prefix.Add(member);
        batch.push_back(prefix);
        if (batch.size() == kPrefetchChunk) {
          prefetch(batch);
          batch.clear();
        }
      }
    }
    if (!batch.empty()) prefetch(batch);
  }
  for (const std::vector<int>& ord : pilot_orders) {
    Coalition prefix(universe_size);
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    for (int pos = 0; pos < m; ++pos) {
      prefix.Add(ord[pos]);
      const double cur_utility = utility(prefix);
      allocator.Record(index_of[ord[pos]] * m + pos,
                       cur_utility - prev_utility);
      prev_utility = cur_utility;
    }
  }

  // One planned cell draw: subset + its superset, evaluated after the
  // wave's batch submission.
  struct CellDraw {
    int cell;
    Coalition without;  // S (may be empty at s = 0)
    Coalition with;     // S + players[p]
  };
  std::vector<int> others(static_cast<size_t>(m > 1 ? m - 1 : 0));
  auto make_draw = [&](int cell) {
    const int p = cell / m;
    const int s = cell % m;
    others.clear();
    for (int q = 0; q < m; ++q) {
      if (q != p) others.push_back(players[q]);
    }
    rng->Shuffle(&others);
    CellDraw draw;
    draw.cell = cell;
    draw.without = Coalition(universe_size);
    for (int k = 0; k < s; ++k) draw.without.Add(others[k]);
    draw.with = draw.without;
    draw.with.Add(players[p]);
    return draw;
  };
  // Executes a wave plan with mirror-paired shared-subset draws. One
  // uniform size-s coalition S (over all m players) serves every
  // still-needy player p outside it twice: stratum s through (S, S+p)
  // and the mirrored stratum m-1-s through (S^c \ p, S^c). Both sides
  // are distribution-correct — S conditioned on p not being a member is
  // a uniform size-s subset of the others, and S^c \ p is then a
  // uniform size-(m-1-s) one — so every cell keeps its stratified
  // sampling law. The sharing amortizes the subset's loss call over
  // every player it serves (just over one call per marginal sample
  // instead of two), and the mirroring is the antithetic cancellation
  // inside the cell grid: for any other player q, q is in exactly one
  // of S and S^c \ p, so pairwise-synergy contributions sum to a
  // constant across the mirrored pair of samples. Draw order is fixed
  // — stratum pairs ascending, players in index order within a shared
  // subset — so the sample stream, and with it the estimate, is
  // thread-count invariant.
  std::vector<int> scratch(players);
  std::vector<char> in_subset(static_cast<size_t>(m), 0);
  auto run_draws = [&](const std::vector<int>& plan) {
    std::vector<CellDraw> draws;
    std::vector<int> need(plan);
    for (int s = 0; s + s <= m - 1; ++s) {
      const int mirror = m - 1 - s;
      int64_t total = 0;
      for (int p = 0; p < m; ++p) {
        total += need[p * m + s];
        if (mirror != s) total += need[p * m + mirror];
      }
      if (total == 0) continue;
      // The rejection loop (a needy player may keep landing inside S)
      // is capped; stragglers fall back to direct per-cell draws.
      int64_t attempts = 8 * total + 16 * m;
      while (total > 0 && attempts-- > 0) {
        rng->Shuffle(&scratch);
        std::fill(in_subset.begin(), in_subset.end(), 0);
        Coalition without(universe_size);
        for (int k = 0; k < s; ++k) {
          without.Add(scratch[k]);
          in_subset[index_of[scratch[k]]] = 1;
        }
        Coalition complement(universe_size);  // S^c, size m - s
        for (int k = s; k < m; ++k) complement.Add(scratch[k]);
        for (int p = 0; p < m && total > 0; ++p) {
          if (in_subset[p] != 0) continue;
          if (need[p * m + s] > 0) {
            CellDraw draw;
            draw.cell = p * m + s;
            draw.without = without;
            draw.with = without;
            draw.with.Add(players[p]);
            draws.push_back(std::move(draw));
            --need[p * m + s];
            --total;
          }
          if (mirror != s && need[p * m + mirror] > 0) {
            CellDraw draw;
            draw.cell = p * m + mirror;
            draw.with = complement;
            draw.without = complement;
            draw.without.Remove(players[p]);
            draws.push_back(std::move(draw));
            --need[p * m + mirror];
            --total;
          }
        }
      }
      for (int p = 0; p < m; ++p) {
        for (int k = 0; k < need[p * m + s]; ++k) {
          draws.push_back(make_draw(p * m + s));
        }
        need[p * m + s] = 0;
        if (mirror != s) {
          for (int k = 0; k < need[p * m + mirror]; ++k) {
            draws.push_back(make_draw(p * m + mirror));
          }
          need[p * m + mirror] = 0;
        }
      }
    }
    if (draws.empty()) return;
    if (prefetch != nullptr) {
      std::vector<Coalition> batch;
      batch.reserve(std::min(draws.size() * 2, kPrefetchChunk));
      for (const CellDraw& d : draws) {
        if (!d.without.IsEmpty()) batch.push_back(d.without);
        batch.push_back(d.with);
        if (batch.size() >= kPrefetchChunk) {
          prefetch(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) prefetch(batch);
    }
    for (const CellDraw& d : draws) {
      const double base = d.without.IsEmpty() ? 0.0 : utility(d.without);
      allocator.Record(d.cell, utility(d.with) - base);
    }
  };

  // Reallocation waves over the post-pilot budget, remainder spread over
  // the leading waves.
  const int num_waves = std::max(cfg.waves, 1);
  for (int w = 0; w < num_waves; ++w) {
    const int64_t share = wave_marginals / num_waves +
                          (w < wave_marginals % num_waves ? 1 : 0);
    if (share <= 0) continue;
    run_draws(allocator.PlanWave(static_cast<int>(share)));
  }

  // Coverage pass: a cell left empty (budget smaller than the grid minus
  // what the pilot covered) would silently drop its stratum from the
  // estimate — force one sample each instead. At most m*m extra draws,
  // and only when the budget was near the fallback threshold anyway.
  std::vector<int> uncovered(static_cast<size_t>(allocator.num_cells()), 0);
  bool any_uncovered = false;
  for (int cell = 0; cell < allocator.num_cells(); ++cell) {
    if (allocator.cell(cell).count == 0) {
      uncovered[cell] = 1;
      any_uncovered = true;
    }
  }
  if (any_uncovered) run_draws(uncovered);

  Vector values(universe_size);
  for (int p = 0; p < m; ++p) {
    double acc = 0.0;
    for (int s = 0; s < m; ++s) acc += allocator.cell(p * m + s).mean;
    values[players[p]] = acc / static_cast<double>(m);
  }
  return values;
}

}  // namespace

Result<Vector> MonteCarloShapley(int universe_size,
                                 const std::vector<int>& players,
                                 const UtilityFn& utility,
                                 int num_permutations, Rng* rng,
                                 ThreadPool* pool,
                                 const UtilityPrefetchFn& prefetch,
                                 const SamplerConfig& sampler) {
  if (players.empty()) return Status::InvalidArgument("no players");
  if (num_permutations <= 0) {
    return Status::InvalidArgument("num_permutations must be positive");
  }
  if (sampler.kind == SamplerKind::kTruncated &&
      sampler.truncation_tolerance < 0.0) {
    return Status::InvalidArgument(
        "truncation_tolerance must be non-negative");
  }
  COMFEDSV_CHECK(rng != nullptr);

  const int m = static_cast<int>(players.size());

  if (sampler.adaptive.enabled) {
    const AdaptiveBudgetConfig& cfg = sampler.adaptive;
    if (cfg.pilot_permutations < 0) {
      return Status::InvalidArgument("pilot_permutations must be >= 0");
    }
    if (cfg.waves <= 0) {
      return Status::InvalidArgument("adaptive waves must be positive");
    }
    if (cfg.min_cell_samples < 1) {
      return Status::InvalidArgument("min_cell_samples must be >= 1");
    }
    // Only run adaptively when the budget can plausibly cover the m*m
    // cell grid; below that the plain sampler is both safer and cheaper.
    if (num_permutations >= 2 * m) {
      int pilot = cfg.pilot_permutations > 0 ? cfg.pilot_permutations
                                             : std::max(2, num_permutations / 8);
      pilot = std::min(pilot, num_permutations);
      const std::vector<std::vector<int>> pilot_orders = DrawOrderings(
          sampler, players, pilot, rng, /*reset_between_draws=*/false);
      const int64_t wave_marginals =
          static_cast<int64_t>(num_permutations - pilot) * m;
      return AdaptiveStratifiedEstimate(universe_size, players, utility,
                                        pilot_orders, wave_marginals, cfg,
                                        rng, prefetch);
    }
  }

  // Draw every ordering sequentially first: the sampled orderings (and
  // so the estimate) depend only on `rng`, never on thread scheduling.
  // The chained draw convention (reset_between_draws = false) reproduces
  // the pre-sampler uniform sequence bit for bit.
  std::vector<std::vector<int>> orders = DrawOrderings(
      sampler, players, num_permutations, rng,
      /*reset_between_draws=*/false);

  if (sampler.kind == SamplerKind::kTruncated) {
    return TruncatedWalkEstimate(universe_size, players, utility, orders,
                                 sampler.truncation_tolerance, prefetch);
  }

  // Submit every permutation prefix to the batched evaluator up front
  // (deduping happens there); the marginal-contribution walks below then
  // read utilities from its cache.
  if (prefetch != nullptr) {
    std::vector<Coalition> batch;
    batch.reserve(std::min(static_cast<size_t>(num_permutations) * m,
                           kPrefetchChunk));
    for (const std::vector<int>& ord : orders) {
      Coalition prefix(universe_size);
      for (int member : ord) {
        prefix.Add(member);
        batch.push_back(prefix);
        if (batch.size() == kPrefetchChunk) {
          prefetch(batch);
          batch.clear();
        }
      }
    }
    if (!batch.empty()) prefetch(batch);
  }

  // Each permutation's marginal-contribution walk fills its own delta
  // vector (one entry per player); the deltas are then reduced in
  // permutation order, which reproduces the single-threaded accumulation
  // order exactly.
  std::vector<Vector> deltas(num_permutations);
  auto walk = [&](int sample) {
    const std::vector<int>& ord = orders[sample];
    Vector delta(universe_size);
    Coalition prefix(universe_size);
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    for (int pos = 0; pos < m; ++pos) {
      prefix.Add(ord[pos]);
      const double cur_utility = utility(prefix);
      delta[ord[pos]] = cur_utility - prev_utility;
      prev_utility = cur_utility;
    }
    deltas[sample] = std::move(delta);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_permutations, walk);
  } else {
    for (int sample = 0; sample < num_permutations; ++sample) walk(sample);
  }

  Vector values(universe_size);
  for (int sample = 0; sample < num_permutations; ++sample) {
    values += deltas[sample];
  }
  values.Scale(1.0 / static_cast<double>(num_permutations));
  return values;
}

int DefaultPermutationBudget(int num_players) {
  COMFEDSV_CHECK_GT(num_players, 0);
  const double suggested =
      std::ceil(static_cast<double>(num_players) *
                std::log(static_cast<double>(num_players) + 1.0));
  return std::max(8, static_cast<int>(suggested));
}

}  // namespace comfedsv
