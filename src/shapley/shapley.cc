#include "shapley/shapley.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/combinatorics.h"

namespace comfedsv {

namespace {

// Chunk size for prefetch submissions: bounds transient Coalition
// storage while keeping BatchLoss chunks full.
constexpr size_t kPrefetchChunk = 8192;

}  // namespace

Result<Vector> ExactShapley(int universe_size,
                            const std::vector<int>& players,
                            const UtilityFn& utility, int max_players,
                            ThreadPool* pool,
                            const UtilityPrefetchFn& prefetch) {
  const int m = static_cast<int>(players.size());
  if (m == 0) return Status::InvalidArgument("no players");
  if (m > max_players) {
    return Status::InvalidArgument(
        "too many players for exact enumeration");
  }

  // Evaluate the utility of every subset of `players`, indexed by the
  // local bitmask over positions in `players`. Each subset writes its own
  // slot, so the parallel and sequential evaluations agree bit for bit.
  const uint32_t num_subsets = 1u << m;
  auto subset_coalition = [&](uint32_t mask) {
    Coalition c(universe_size);
    for (int p = 0; p < m; ++p) {
      if (mask & (1u << p)) c.Add(players[p]);
    }
    return c;
  };

  // Hand the whole subset lattice to the batched evaluator first (in
  // ascending-mask chunks): consecutive masks share ascending prefixes,
  // which is exactly the access pattern the incremental aggregator and
  // the BatchLoss engine amortize best.
  if (prefetch != nullptr) {
    std::vector<Coalition> batch;
    batch.reserve(std::min<size_t>(num_subsets - 1, kPrefetchChunk));
    for (uint32_t mask = 1; mask < num_subsets; ++mask) {
      batch.push_back(subset_coalition(mask));
      if (batch.size() == kPrefetchChunk) {
        prefetch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) prefetch(batch);
  }

  std::vector<double> subset_utility(num_subsets);
  auto eval_subset = [&](int mask_index) {
    const uint32_t mask = static_cast<uint32_t>(mask_index);
    subset_utility[mask] = utility(subset_coalition(mask));
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int>(num_subsets), eval_subset);
  } else {
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      eval_subset(static_cast<int>(mask));
    }
  }

  // phi_i = (1/m) sum_{S not containing i} [1 / C(m-1, |S|)]
  //         * [U(S + i) - U(S)].
  // The weight depends only on |S|: hoist the divisions out of the
  // 2^m * m mask loop (as comfedsv_values.cc::ExactSumOverCoalitions
  // does). Same operations per term, so the output is bit-identical.
  std::vector<double> size_weight(m);
  for (int s = 0; s < m; ++s) size_weight[s] = 1.0 / Binomial(m - 1, s);
  Vector values(universe_size);
  for (int p = 0; p < m; ++p) {
    const uint32_t bit = 1u << p;
    double acc = 0.0;
    for (uint32_t mask = 0; mask < num_subsets; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      acc += size_weight[s] *
             (subset_utility[mask | bit] - subset_utility[mask]);
    }
    values[players[p]] = acc / static_cast<double>(m);
  }
  return values;
}

namespace {

// TMC-style truncated walks (SamplerKind::kTruncated). The scan proceeds
// position-by-position in lockstep across all permutations: each wave
// collects the next prefix of every still-active walk, submits the whole
// wave to the batched evaluator, then reads the utilities back in
// permutation order and applies the truncation rule. Tail prefixes of
// truncated walks are never evaluated — that is the loss-call saving —
// and every decision depends only on utilities, so the result is
// identical for any thread count.
Vector TruncatedWalkEstimate(int universe_size,
                             const std::vector<int>& players,
                             const UtilityFn& utility,
                             const std::vector<std::vector<int>>& orders,
                             double tolerance,
                             const UtilityPrefetchFn& prefetch) {
  const int m = static_cast<int>(players.size());
  const int num_permutations = static_cast<int>(orders.size());

  // The truncation reference U(grand): every permutation's final prefix,
  // so in the untruncated estimator it is evaluated anyway.
  Coalition grand = Coalition::FromMembers(universe_size, players);
  if (prefetch != nullptr) prefetch({grand});
  const double grand_utility = utility(grand);

  struct WalkState {
    Coalition prefix;
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    bool active = true;
  };
  std::vector<WalkState> walks(num_permutations);
  for (WalkState& w : walks) w.prefix = Coalition(universe_size);

  std::vector<Vector> deltas(num_permutations,
                             Vector(universe_size));  // zero-initialized
  std::vector<Coalition> wave;
  for (int pos = 0; pos < m; ++pos) {
    wave.clear();
    for (int sample = 0; sample < num_permutations; ++sample) {
      if (!walks[sample].active) continue;
      walks[sample].prefix.Add(orders[sample][pos]);
      wave.push_back(walks[sample].prefix);
    }
    if (wave.empty()) break;
    if (prefetch != nullptr) prefetch(wave);
    for (int sample = 0; sample < num_permutations; ++sample) {
      WalkState& w = walks[sample];
      if (!w.active) continue;
      const double cur_utility = utility(w.prefix);
      deltas[sample][orders[sample][pos]] = cur_utility - w.prev_utility;
      w.prev_utility = cur_utility;
      // Within tolerance of the grand coalition: the remaining tail's
      // marginals stay 0 (their deltas were zero-initialized) and its
      // prefixes are never submitted.
      if (std::abs(grand_utility - cur_utility) <= tolerance) {
        w.active = false;
      }
    }
  }

  Vector values(universe_size);
  for (int sample = 0; sample < num_permutations; ++sample) {
    values += deltas[sample];
  }
  values.Scale(1.0 / static_cast<double>(num_permutations));
  return values;
}

}  // namespace

Result<Vector> MonteCarloShapley(int universe_size,
                                 const std::vector<int>& players,
                                 const UtilityFn& utility,
                                 int num_permutations, Rng* rng,
                                 ThreadPool* pool,
                                 const UtilityPrefetchFn& prefetch,
                                 const SamplerConfig& sampler) {
  if (players.empty()) return Status::InvalidArgument("no players");
  if (num_permutations <= 0) {
    return Status::InvalidArgument("num_permutations must be positive");
  }
  if (sampler.kind == SamplerKind::kTruncated &&
      sampler.truncation_tolerance < 0.0) {
    return Status::InvalidArgument(
        "truncation_tolerance must be non-negative");
  }
  COMFEDSV_CHECK(rng != nullptr);

  const int m = static_cast<int>(players.size());

  // Draw every ordering sequentially first: the sampled orderings (and
  // so the estimate) depend only on `rng`, never on thread scheduling.
  // The chained draw convention (reset_between_draws = false) reproduces
  // the pre-sampler uniform sequence bit for bit.
  std::vector<std::vector<int>> orders = DrawOrderings(
      sampler, players, num_permutations, rng,
      /*reset_between_draws=*/false);

  if (sampler.kind == SamplerKind::kTruncated) {
    return TruncatedWalkEstimate(universe_size, players, utility, orders,
                                 sampler.truncation_tolerance, prefetch);
  }

  // Submit every permutation prefix to the batched evaluator up front
  // (deduping happens there); the marginal-contribution walks below then
  // read utilities from its cache.
  if (prefetch != nullptr) {
    std::vector<Coalition> batch;
    batch.reserve(std::min(static_cast<size_t>(num_permutations) * m,
                           kPrefetchChunk));
    for (const std::vector<int>& ord : orders) {
      Coalition prefix(universe_size);
      for (int member : ord) {
        prefix.Add(member);
        batch.push_back(prefix);
        if (batch.size() == kPrefetchChunk) {
          prefetch(batch);
          batch.clear();
        }
      }
    }
    if (!batch.empty()) prefetch(batch);
  }

  // Each permutation's marginal-contribution walk fills its own delta
  // vector (one entry per player); the deltas are then reduced in
  // permutation order, which reproduces the single-threaded accumulation
  // order exactly.
  std::vector<Vector> deltas(num_permutations);
  auto walk = [&](int sample) {
    const std::vector<int>& ord = orders[sample];
    Vector delta(universe_size);
    Coalition prefix(universe_size);
    double prev_utility = 0.0;  // U(empty) = 0 by convention
    for (int pos = 0; pos < m; ++pos) {
      prefix.Add(ord[pos]);
      const double cur_utility = utility(prefix);
      delta[ord[pos]] = cur_utility - prev_utility;
      prev_utility = cur_utility;
    }
    deltas[sample] = std::move(delta);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_permutations, walk);
  } else {
    for (int sample = 0; sample < num_permutations; ++sample) walk(sample);
  }

  Vector values(universe_size);
  for (int sample = 0; sample < num_permutations; ++sample) {
    values += deltas[sample];
  }
  values.Scale(1.0 / static_cast<double>(num_permutations));
  return values;
}

int DefaultPermutationBudget(int num_players) {
  COMFEDSV_CHECK_GT(num_players, 0);
  const double suggested =
      std::ceil(static_cast<double>(num_players) *
                std::log(static_cast<double>(num_players) + 1.0));
  return std::max(8, static_cast<int>(suggested));
}

}  // namespace comfedsv
