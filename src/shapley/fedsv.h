// Federated Shapley value (Wang et al. 2020; Definition 2 of the paper):
// in each round, the Shapley value of the round's utility game restricted
// to the selected clients I_t; unselected clients get zero. The final
// FedSV is the sum over rounds.
//
// This is the baseline the paper improves on — Observation 1 / Example 1
// show it violates symmetry under partial participation.
#ifndef COMFEDSV_SHAPLEY_FEDSV_H_
#define COMFEDSV_SHAPLEY_FEDSV_H_

#include <cstdint>

#include "common/execution_context.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "fl/round_record.h"
#include "linalg/vector.h"
#include "models/model.h"
#include "shapley/sampler.h"
#include "shapley/utility.h"

namespace comfedsv {

/// How each round's restricted Shapley values are computed.
struct FedSvConfig {
  enum class Mode {
    kExact,       ///< 2^|I_t| subset enumeration (small I_t)
    kMonteCarlo,  ///< permutation sampling (the paper's large-K setting)
  };
  Mode mode = Mode::kExact;
  /// Permutations per round for kMonteCarlo; 0 = DefaultPermutationBudget
  /// (O(K log K), the budget in the paper's Sec. VII-D analysis).
  int permutations_per_round = 0;
  /// kMonteCarlo only: how the per-round orderings are sampled (uniform
  /// IID, antithetic pairs, position-stratified, or truncated walks —
  /// see shapley/sampler.h for the accuracy-per-loss-call trade-offs).
  SamplerConfig sampler;
  uint64_t seed = 0;
};

/// Checkpointable mid-run FedSV accumulation: the running per-client
/// sums, the Monte-Carlo permutation stream, and the loss-call counter.
/// Serialized by the core checkpoint layer; restored via
/// FedSvEvaluator::RestoreState.
struct FedSvEvaluatorState {
  Vector values;
  RngState rng;
  int64_t loss_calls = 0;
};

/// Everything a FedSV run produced: the accumulated values plus the
/// measured evaluation-cost accounting (satellite of the adaptive
/// estimator work — benches read measured counts from here instead of
/// re-deriving them).
struct FedSvOutput {
  Vector values;
  int64_t loss_calls = 0;
  UtilityStats stats;
};

/// Accumulates FedSV over a training run. Plug into FedAvgTrainer::Train
/// as the RoundObserver, then read values().
class FedSvEvaluator : public RoundObserver {
 public:
  /// `ctx` (optional; must outlive the evaluator) parallelizes each
  /// round's Shapley computation — permutation walks in kMonteCarlo mode,
  /// subset enumeration in kExact mode — with values bit-identical to the
  /// single-threaded evaluation for any thread count.
  FedSvEvaluator(const Model* model, const Dataset* test_data,
                 int num_clients, FedSvConfig config,
                 ExecutionContext* ctx = nullptr);

  void OnRound(const RoundRecord& record) override;

  /// Per-client FedSV s_i accumulated so far (length num_clients).
  const Vector& values() const { return values_; }

  /// Total test-loss evaluations spent (the Fig. 8 cost unit).
  int64_t loss_calls() const { return loss_calls_; }

  /// Measured evaluation accounting accumulated across rounds (loss
  /// calls, batched passes, memo hits, distinct coalitions). Diagnostic:
  /// not checkpointed, so after RestoreState it covers the resumed
  /// portion only (loss_calls stays authoritative either way).
  const UtilityStats& stats() const { return stats_; }

  /// values/loss_calls/stats bundled for callers that surface them
  /// together (bench, pipeline).
  FedSvOutput Output() const { return {values_, loss_calls_, stats_}; }

  /// Snapshot of the accumulation after any number of rounds.
  FedSvEvaluatorState SaveState() const;

  /// Resumes a snapshot taken from an evaluator with the same
  /// num_clients/config; OnRound then continues bit-identically to the
  /// run that saved it.
  Status RestoreState(const FedSvEvaluatorState& state);

 private:
  const Model* model_;
  const Dataset* test_data_;
  FedSvConfig config_;
  ExecutionContext* ctx_;  // not owned; null = inline execution
  Vector values_;
  Rng rng_;
  int64_t loss_calls_ = 0;
  UtilityStats stats_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_SHAPLEY_FEDSV_H_
