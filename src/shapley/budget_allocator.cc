#include "shapley/budget_allocator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace comfedsv {

double WelfordStat::StdDev() const { return std::sqrt(Variance()); }

AdaptiveBudgetAllocator::AdaptiveBudgetAllocator(int num_cells,
                                                 int min_cell_samples)
    : cells_(static_cast<size_t>(num_cells)),
      min_cell_samples_(min_cell_samples) {
  COMFEDSV_CHECK_GT(num_cells, 0);
  COMFEDSV_CHECK_GE(min_cell_samples, 1);
}

void AdaptiveBudgetAllocator::Record(int cell, double value) {
  COMFEDSV_CHECK_GE(cell, 0);
  COMFEDSV_CHECK_LT(static_cast<size_t>(cell), cells_.size());
  cells_[static_cast<size_t>(cell)].Add(value);
  ++total_samples_;
}

const WelfordStat& AdaptiveBudgetAllocator::cell(int index) const {
  COMFEDSV_CHECK_GE(index, 0);
  COMFEDSV_CHECK_LT(static_cast<size_t>(index), cells_.size());
  return cells_[static_cast<size_t>(index)];
}

bool AdaptiveBudgetAllocator::RestoreCells(std::vector<WelfordStat> cells) {
  if (cells.size() != cells_.size()) return false;
  total_samples_ = 0;
  for (const WelfordStat& c : cells) {
    if (c.count < 0) return false;
    total_samples_ += c.count;
  }
  cells_ = std::move(cells);
  return true;
}

std::vector<int> AdaptiveBudgetAllocator::PlanWave(int wave_budget) const {
  std::vector<int> plan(cells_.size(), 0);
  if (wave_budget <= 0) return plan;
  int remaining = wave_budget;

  // Top-up pass: variance is not trustworthy below min_cell_samples, so
  // under-sampled cells come first. Breadth-first by level — every cell
  // reaches one sample before any cell gets its second — so a budget
  // smaller than the cell count maximizes coverage instead of piling
  // onto a prefix (never an over-spend, never a deadlock).
  for (int level = 1; level <= min_cell_samples_ && remaining > 0;
       ++level) {
    for (size_t h = 0; h < cells_.size() && remaining > 0; ++h) {
      if (cells_[h].count + plan[h] < level) {
        plan[h] += 1;
        --remaining;
      }
    }
  }
  if (remaining == 0) return plan;

  // Neyman pass: optimum allocation for equally weighted strata puts
  // samples proportional to each stratum's standard deviation. Weights
  // come from the recorded stats only, so the plan is a deterministic
  // function of (samples so far, wave budget).
  std::vector<double> weight(cells_.size(), 0.0);
  double weight_sum = 0.0;
  for (size_t h = 0; h < cells_.size(); ++h) {
    weight[h] = cells_[h].StdDev();
    weight_sum += weight[h];
  }
  // Exploration floor: a cell whose few samples happened to coincide
  // reports a sample deviation of zero, but that is weak evidence of
  // determinism — starving it forever would freeze its contribution to
  // the estimator variance at the top-up level no matter how large the
  // total budget grows. A floor of a fraction of the mean deviation
  // keeps every cell's sample count growing linearly with budget
  // (so the estimate still converges) while spending most of each wave
  // on the cells with demonstrated variance.
  if (weight_sum > 0.0) {
    const double floor =
        0.25 * weight_sum / static_cast<double>(cells_.size());
    weight_sum = 0.0;
    for (size_t h = 0; h < cells_.size(); ++h) {
      weight[h] += floor;
      weight_sum += weight[h];
    }
  }
  if (weight_sum <= 0.0) {
    // Every known cell looks deterministic: spread evenly (uniform
    // weights through the same largest-remainder rounding below) rather
    // than starving the wave — two samples per cell is not proof of
    // constancy.
    std::fill(weight.begin(), weight.end(), 1.0);
    weight_sum = static_cast<double>(weight.size());
  }

  // Largest-remainder rounding: floor the proportional shares, then hand
  // the leftover samples to the largest fractional remainders, breaking
  // ties toward the lower cell index.
  std::vector<double> share(cells_.size(), 0.0);
  int floored_total = 0;
  for (size_t h = 0; h < cells_.size(); ++h) {
    share[h] = static_cast<double>(remaining) * weight[h] / weight_sum;
    const int fl = static_cast<int>(std::floor(share[h]));
    plan[h] += fl;
    share[h] -= fl;
    floored_total += fl;
  }
  int leftover = remaining - floored_total;
  std::vector<size_t> order(cells_.size());
  for (size_t h = 0; h < order.size(); ++h) order[h] = h;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return share[a] > share[b];
  });
  for (size_t k = 0; k < order.size() && leftover > 0; ++k) {
    plan[order[k]] += 1;
    --leftover;
  }
  return plan;
}

}  // namespace comfedsv
