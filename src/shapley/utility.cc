#include "shapley/utility.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "linalg/matrix.h"

namespace comfedsv {
namespace {

// Coalitions per BatchLoss chunk. Capped so a chunk's stacked parameter
// matrix stays around 16M doubles even for very large models; the bound
// depends only on the model, never on thread count, so chunk boundaries
// (and therefore results and counter order) are deterministic.
size_t ChunkSize(size_t params_per_coalition) {
  constexpr size_t kTargetDoubles = size_t{16} << 20;
  constexpr size_t kMaxChunk = 256;
  if (params_per_coalition == 0) return kMaxChunk;
  return std::clamp<size_t>(kTargetDoubles / params_per_coalition, 16,
                            kMaxChunk);
}

}  // namespace

CoalitionAggregator::CoalitionAggregator(const RoundRecord* record)
    : record_(record), dim_(record->global_before.size()) {
  COMFEDSV_CHECK(record_ != nullptr);
}

void CoalitionAggregator::MeanInto(const Coalition& coalition, double* out) {
  members_scratch_.clear();
  coalition.ForEachMember([this](int member) {
    COMFEDSV_CHECK_LT(static_cast<size_t>(member),
                      record_->local_models.size());
    members_scratch_.push_back(member);
  });
  const size_t count = members_scratch_.size();
  COMFEDSV_CHECK_GT(count, 0u);

  // Longest shared ascending prefix with the previous coalition's chain.
  size_t keep = 0;
  while (keep < depth_ && keep < count &&
         chain_[keep] == members_scratch_[keep]) {
    ++keep;
  }
  depth_ = keep;
  chain_.resize(std::max(chain_.size(), count));
  // Extend the chain: one Axpy per member beyond the shared prefix.
  for (size_t k = depth_; k < count; ++k) {
    if (partials_.size() <= k) partials_.emplace_back(dim_);
    std::vector<double>& dst = partials_[k];
    const int member = members_scratch_[k];
    const Vector& local = record_->local_models[member];
    COMFEDSV_CHECK_EQ(local.size(), dim_);
    if (k == 0) {
      // 0.0 + x, not x: the sequential path Axpys into a zero vector,
      // which flips -0.0 inputs to +0.0 — reproduce that exactly.
      const double* lp = local.data();
      for (size_t i = 0; i < dim_; ++i) dst[i] = 0.0 + lp[i];
    } else {
      const std::vector<double>& prev = partials_[k - 1];
      const double* lp = local.data();
      for (size_t i = 0; i < dim_; ++i) dst[i] = prev[i] + lp[i];
    }
    chain_[k] = member;
    ++depth_;
  }

  const double inv = 1.0 / static_cast<double>(count);
  const std::vector<double>& sum = partials_[count - 1];
  for (size_t i = 0; i < dim_; ++i) out[i] = sum[i] * inv;
}

RoundUtility::RoundUtility(const Model* model, const Dataset* test_data,
                           const RoundRecord* record, int64_t* loss_calls,
                           ExecutionContext* ctx, UtilityStats* stats)
    : model_(model),
      test_data_(test_data),
      record_(record),
      loss_calls_(loss_calls),
      ctx_(ctx),
      stats_(stats) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK(record_ != nullptr);
}

double RoundUtility::Utility(const Coalition& coalition) {
  if (coalition.IsEmpty()) return 0.0;
  {
    MutexLock lock(mu_);
    auto it = cache_.find(coalition);
    if (it != cache_.end()) {
      if (stats_ != nullptr) ++stats_->memo_hits;
      return it->second;
    }
  }

  // Average the coalition members' local models. Computed outside the
  // lock: the test-set loss below dominates every caller's runtime.
  Vector aggregate(record_->global_before.size());
  int count = 0;
  coalition.ForEachMember([this, &aggregate, &count](int k) {
    COMFEDSV_CHECK_LT(static_cast<size_t>(k), record_->local_models.size());
    aggregate.Axpy(1.0, record_->local_models[k]);
    ++count;
  });
  aggregate.Scale(1.0 / static_cast<double>(count));

  const double loss = model_->Loss(aggregate, *test_data_);
  const double utility = record_->test_loss_before - loss;

  MutexLock lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, utility);
  if (inserted) {
    if (loss_calls_ != nullptr) ++(*loss_calls_);
    ++distinct_evaluations_;
    if (stats_ != nullptr) {
      ++stats_->loss_calls;
      ++stats_->distinct_coalitions;
    }
  } else if (stats_ != nullptr) {
    // Lost a compute race: the value was already cached by another
    // thread, so this thread's work resolved as a hit.
    ++stats_->memo_hits;
  }
  return it->second;
}

void RoundUtility::RecordPredicted(const Coalition& coalition, double value,
                                   double bias_bound) {
  if (coalition.IsEmpty()) return;
  MutexLock lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, value);
  (void)it;
  if (!inserted) return;
  ++distinct_evaluations_;
  if (stats_ != nullptr) {
    ++stats_->distinct_coalitions;
    ++stats_->surrogate_skips;
    stats_->surrogate_bias_bound += bias_bound;
  }
}

void RoundUtility::EvaluateBatch(const std::vector<Coalition>& coalitions) {
  // Dedup against the cache and within the batch, preserving submission
  // order so counters and cache fills are deterministic.
  std::vector<Coalition> pending;
  {
    MutexLock lock(mu_);
    std::unordered_set<Coalition, CoalitionHash> seen;
    seen.reserve(coalitions.size());
    for (const Coalition& c : coalitions) {
      if (c.IsEmpty()) continue;
      if (cache_.find(c) != cache_.end()) {
        if (stats_ != nullptr) ++stats_->memo_hits;
        continue;
      }
      if (seen.insert(c).second) {
        pending.push_back(c);
      } else if (stats_ != nullptr) {
        ++stats_->memo_hits;
      }
    }
  }
  if (pending.empty()) return;

  const size_t params = record_->global_before.size();
  const size_t chunk = ChunkSize(params);
  CoalitionAggregator aggregator(record_);
  Matrix stacked;
  std::vector<double> losses;
  for (size_t c0 = 0; c0 < pending.size(); c0 += chunk) {
    const size_t n = std::min(c0 + chunk, pending.size()) - c0;
    if (stacked.rows() != n) stacked = Matrix(n, params);
    // Aggregates are formed sequentially (the incremental chain reuses
    // the previous coalition's prefix); the loss pass fans out inside
    // BatchLoss over fixed-size sub-blocks.
    for (size_t r = 0; r < n; ++r) {
      aggregator.MeanInto(pending[c0 + r], stacked.RowPtr(r));
    }
    model_->BatchLoss(stacked, *test_data_, &losses, ctx_);

    MutexLock lock(mu_);
    if (stats_ != nullptr) ++stats_->batched_calls;
    for (size_t r = 0; r < n; ++r) {
      auto [it, inserted] = cache_.emplace(
          pending[c0 + r], record_->test_loss_before - losses[r]);
      if (inserted) {
        if (loss_calls_ != nullptr) ++(*loss_calls_);
        ++distinct_evaluations_;
        if (stats_ != nullptr) {
          ++stats_->loss_calls;
          ++stats_->distinct_coalitions;
        }
      } else if (stats_ != nullptr) {
        // Lost a fill race with a concurrent Utility() for the same
        // coalition: resolve this submission as a hit, mirroring the
        // race-loser branch in Utility(). Every submitted coalition
        // thereby lands in exactly one counter, so loss_calls +
        // memo_hits + surrogate_skips equals total submissions no
        // matter how the race interleaves.
        ++stats_->memo_hits;
      }
    }
  }
}

}  // namespace comfedsv
