#include "shapley/utility.h"

#include "common/check.h"

namespace comfedsv {

RoundUtility::RoundUtility(const Model* model, const Dataset* test_data,
                           const RoundRecord* record, int64_t* loss_calls)
    : model_(model),
      test_data_(test_data),
      record_(record),
      loss_calls_(loss_calls) {
  COMFEDSV_CHECK(model_ != nullptr);
  COMFEDSV_CHECK(test_data_ != nullptr);
  COMFEDSV_CHECK(record_ != nullptr);
}

double RoundUtility::Utility(const Coalition& coalition) {
  if (coalition.IsEmpty()) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(coalition);
    if (it != cache_.end()) return it->second;
  }

  // Average the coalition members' local models. Computed outside the
  // lock: the test-set loss below dominates every caller's runtime.
  const std::vector<int> members = coalition.Members();
  Vector aggregate(record_->global_before.size());
  for (int k : members) {
    COMFEDSV_CHECK_LT(static_cast<size_t>(k), record_->local_models.size());
    aggregate.Axpy(1.0, record_->local_models[k]);
  }
  aggregate.Scale(1.0 / static_cast<double>(members.size()));

  const double loss = model_->Loss(aggregate, *test_data_);
  const double utility = record_->test_loss_before - loss;

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(coalition, utility);
  if (inserted) {
    if (loss_calls_ != nullptr) ++(*loss_calls_);
    ++distinct_evaluations_;
  }
  return it->second;
}

}  // namespace comfedsv
