#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace comfedsv {

std::vector<Dataset> PartitionIid(const Dataset& data, int num_clients,
                                  Rng* rng) {
  COMFEDSV_CHECK_GT(num_clients, 0);
  COMFEDSV_CHECK(rng != nullptr);
  COMFEDSV_CHECK_GE(data.num_samples(), static_cast<size_t>(num_clients));
  std::vector<size_t> order(data.num_samples());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  std::vector<Dataset> out;
  out.reserve(num_clients);
  const size_t base = data.num_samples() / num_clients;
  const size_t remainder = data.num_samples() % num_clients;
  size_t cursor = 0;
  for (int k = 0; k < num_clients; ++k) {
    const size_t take = base + (static_cast<size_t>(k) < remainder ? 1 : 0);
    std::vector<size_t> idx(order.begin() + cursor,
                            order.begin() + cursor + take);
    cursor += take;
    out.push_back(data.Subset(idx));
  }
  return out;
}

std::vector<Dataset> PartitionByLabelShards(const Dataset& data,
                                            int num_clients,
                                            int shards_per_client,
                                            Rng* rng) {
  COMFEDSV_CHECK_GT(num_clients, 0);
  COMFEDSV_CHECK_GT(shards_per_client, 0);
  COMFEDSV_CHECK(rng != nullptr);
  const int num_shards = num_clients * shards_per_client;
  COMFEDSV_CHECK_GE(data.num_samples(), static_cast<size_t>(num_shards));

  // Sort sample indices by label (stable on original order).
  std::vector<size_t> order(data.num_samples());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return data.label(a) < data.label(b);
  });

  // Slice into contiguous shards and deal shards to clients at random.
  std::vector<int> shard_ids(num_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng->Shuffle(&shard_ids);

  const size_t shard_size = data.num_samples() / num_shards;
  std::vector<Dataset> out;
  out.reserve(num_clients);
  for (int k = 0; k < num_clients; ++k) {
    std::vector<size_t> idx;
    idx.reserve(shard_size * shards_per_client);
    for (int s = 0; s < shards_per_client; ++s) {
      const int shard = shard_ids[k * shards_per_client + s];
      const size_t begin = shard * shard_size;
      // Give the final shard any leftover samples.
      const size_t end = (shard == num_shards - 1) ? data.num_samples()
                                                   : begin + shard_size;
      for (size_t i = begin; i < end; ++i) idx.push_back(order[i]);
    }
    out.push_back(data.Subset(idx));
  }
  return out;
}

}  // namespace comfedsv
