#include "data/image_sim.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace comfedsv {
namespace {

struct FamilyTraits {
  int channels;
  double prototype_scale;  // separation between class centres
  double noise_stddev;     // per-pixel sample noise
  double background_scale; // strength of shared nuisance factors
  uint64_t prototype_salt; // fixes the class prototypes per family
};

FamilyTraits TraitsFor(ImageFamily family) {
  switch (family) {
    case ImageFamily::kMnist:
      return {1, 1.0, 0.55, 0.0, 0x6D6E6973ULL};
    case ImageFamily::kFashionMnist:
      return {1, 0.8, 0.75, 0.15, 0x666D6E73ULL};
    case ImageFamily::kCifar10:
      return {3, 0.65, 1.0, 0.45, 0x63696661ULL};
  }
  COMFEDSV_CHECK_MSG(false, "unknown ImageFamily");
  return {};
}

}  // namespace

std::string ImageFamilyName(ImageFamily family) {
  switch (family) {
    case ImageFamily::kMnist:
      return "mnist-sim";
    case ImageFamily::kFashionMnist:
      return "fmnist-sim";
    case ImageFamily::kCifar10:
      return "cifar10-sim";
  }
  return "unknown";
}

int SimulatedImageDim(const SimulatedImageConfig& config) {
  return config.image_side * config.image_side *
         TraitsFor(config.family).channels;
}

Dataset GenerateSimulatedImages(const SimulatedImageConfig& config) {
  COMFEDSV_CHECK_GT(config.num_samples, 0);
  COMFEDSV_CHECK_GT(config.image_side, 1);
  COMFEDSV_CHECK_GT(config.num_classes, 1);
  const FamilyTraits traits = TraitsFor(config.family);
  const int dim = SimulatedImageDim(config);

  // Class prototypes are fixed by (family, num_classes, image_side) alone —
  // independent of the sampling seed — so different draws (train vs test,
  // repeated trials) come from the same underlying distribution.
  Rng proto_rng(traits.prototype_salt ^
                (static_cast<uint64_t>(config.num_classes) << 32) ^
                static_cast<uint64_t>(config.image_side));
  std::vector<Vector> prototypes(config.num_classes, Vector(dim));
  for (int c = 0; c < config.num_classes; ++c) {
    for (int j = 0; j < dim; ++j) {
      prototypes[c][j] = traits.prototype_scale * proto_rng.NextGaussian();
    }
  }
  // FashionMNIST-like: pull consecutive class pairs together so some
  // classes are confusable (shirt vs pullover etc.).
  if (config.family == ImageFamily::kFashionMnist) {
    for (int c = 0; c + 1 < config.num_classes; c += 2) {
      for (int j = 0; j < dim; ++j) {
        const double mid =
            0.5 * (prototypes[c][j] + prototypes[c + 1][j]);
        prototypes[c][j] = 0.45 * prototypes[c][j] + 0.55 * mid;
        prototypes[c + 1][j] = 0.45 * prototypes[c + 1][j] + 0.55 * mid;
      }
    }
  }
  // Two shared nuisance directions ("background"/"lighting") used by the
  // harder families: per-sample random strength, uncorrelated with class.
  Vector background_a(dim);
  Vector background_b(dim);
  for (int j = 0; j < dim; ++j) {
    background_a[j] = proto_rng.NextGaussian();
    background_b[j] = proto_rng.NextGaussian();
  }

  Rng rng(config.seed ^ traits.prototype_salt);
  Matrix feats(config.num_samples, dim);
  std::vector<int> labels(config.num_samples);
  for (int s = 0; s < config.num_samples; ++s) {
    // Balanced classes with a deterministic round-robin base plus shuffle
    // via label sampling keeps histograms near-uniform for any size.
    const int y = s % config.num_classes;
    labels[s] = y;
    const double bg_a = traits.background_scale * rng.NextGaussian();
    const double bg_b = traits.background_scale * rng.NextGaussian();
    double* row = feats.RowPtr(s);
    for (int j = 0; j < dim; ++j) {
      row[j] = prototypes[y][j] + bg_a * background_a[j] +
               bg_b * background_b[j] +
               traits.noise_stddev * rng.NextGaussian();
    }
  }
  Dataset all(std::move(feats), std::move(labels), config.num_classes);
  // Shuffle sample order so contiguous slices are class-balanced draws.
  std::vector<size_t> order(all.num_samples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  return all.Subset(order);
}

}  // namespace comfedsv
