#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace comfedsv {

Dataset::Dataset(Matrix features, std::vector<int> labels, int num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  COMFEDSV_CHECK_EQ(features_.rows(), labels_.size());
  COMFEDSV_CHECK_GT(num_classes_, 0);
  for (int y : labels_) {
    COMFEDSV_CHECK_GE(y, 0);
    COMFEDSV_CHECK_LT(y, num_classes_);
  }
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Matrix feats(indices.size(), dim());
  std::vector<int> labels(indices.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    const size_t src = indices[r];
    COMFEDSV_CHECK_LT(src, num_samples());
    const double* src_row = features_.RowPtr(src);
    double* dst_row = feats.RowPtr(r);
    std::copy(src_row, src_row + dim(), dst_row);
    labels[r] = labels_[src];
  }
  return Dataset(std::move(feats), std::move(labels), num_classes_);
}

std::pair<Dataset, Dataset> Dataset::RandomSplit(double fraction,
                                                 Rng* rng) const {
  COMFEDSV_CHECK_GE(fraction, 0.0);
  COMFEDSV_CHECK_LE(fraction, 1.0);
  COMFEDSV_CHECK(rng != nullptr);
  // Degenerate splits draw nothing from the RNG: there is exactly one
  // outcome, so consuming stream state would only shift every later
  // consumer of `rng` for no reason. The empty side keeps this dataset's
  // dim/num_classes so downstream shape checks still hold; going through
  // Subset instead would crash on a default-constructed dataset (its
  // num_classes of 0 fails the validating constructor).
  auto empty_like = [this]() {
    if (num_classes_ == 0) return Dataset();
    return Dataset(Matrix(0, dim()), {}, num_classes_);
  };
  if (empty()) return {empty_like(), empty_like()};
  if (fraction == 0.0) return {*this, empty_like()};
  if (fraction == 1.0) return {empty_like(), *this};
  std::vector<size_t> order(num_samples());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const size_t second_count =
      static_cast<size_t>(fraction * static_cast<double>(num_samples()));
  std::vector<size_t> first(order.begin() + second_count, order.end());
  std::vector<size_t> second(order.begin(), order.begin() + second_count);
  return {Subset(first), Subset(second)};
}

Dataset Dataset::Concat(const std::vector<const Dataset*>& parts) {
  COMFEDSV_CHECK(!parts.empty());
  const size_t dim = parts[0]->dim();
  const int num_classes = parts[0]->num_classes();
  size_t total = 0;
  for (const Dataset* p : parts) {
    COMFEDSV_CHECK(p != nullptr);
    COMFEDSV_CHECK_EQ(p->dim(), dim);
    COMFEDSV_CHECK_EQ(p->num_classes(), num_classes);
    total += p->num_samples();
  }
  Matrix feats(total, dim);
  std::vector<int> labels;
  labels.reserve(total);
  size_t row = 0;
  for (const Dataset* p : parts) {
    for (size_t i = 0; i < p->num_samples(); ++i, ++row) {
      const double* src = p->sample(i);
      std::copy(src, src + dim, feats.RowPtr(row));
      labels.push_back(p->label(i));
    }
  }
  return Dataset(std::move(feats), std::move(labels), num_classes);
}

std::vector<int> Dataset::ClassHistogram() const {
  std::vector<int> hist(num_classes_, 0);
  for (int y : labels_) ++hist[y];
  return hist;
}

}  // namespace comfedsv
