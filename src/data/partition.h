// Partitioning a pooled dataset across federated clients: IID (uniform
// random) and the FedAvg-paper non-IID scheme where each client receives
// shards containing only a couple of classes.
#ifndef COMFEDSV_DATA_PARTITION_H_
#define COMFEDSV_DATA_PARTITION_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace comfedsv {

/// Uniformly random partition into `num_clients` near-equal datasets.
std::vector<Dataset> PartitionIid(const Dataset& data, int num_clients,
                                  Rng* rng);

/// Non-IID label-shard partition (McMahan et al. 2017, the setting the
/// paper reuses): sort samples by label, slice into
/// `num_clients * shards_per_client` contiguous shards, deal each client
/// `shards_per_client` shards at random. With shards_per_client = 2 most
/// clients see samples from only ~2 classes.
std::vector<Dataset> PartitionByLabelShards(const Dataset& data,
                                            int num_clients,
                                            int shards_per_client, Rng* rng);

}  // namespace comfedsv

#endif  // COMFEDSV_DATA_PARTITION_H_
