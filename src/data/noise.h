// Data-quality degradation used by the detection experiments (Figs. 6, 7):
// Gaussian feature noise on a fraction of samples, and uniform random
// label flipping.
#ifndef COMFEDSV_DATA_NOISE_H_
#define COMFEDSV_DATA_NOISE_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace comfedsv {

/// Adds N(0, stddev^2) noise to every feature of a uniformly chosen
/// `fraction` of samples (Fig. 6: client i gets fraction 0.05 * i).
/// Returns the number of corrupted samples.
int AddGaussianFeatureNoise(Dataset* data, double fraction, double stddev,
                            Rng* rng);

/// Like AddGaussianFeatureNoise, but the noise on feature j has standard
/// deviation `relative_stddev` times the empirical standard deviation of
/// column j. Use for data whose features have very different scales
/// (e.g. the FedProx synthetic features, Sigma_jj = j^-1.2): uniform
/// noise would swamp small-scale features and *inflate* gradient norms
/// instead of degrading quality. Returns the number of corrupted samples.
int AddRelativeGaussianFeatureNoise(Dataset* data, double fraction,
                                    double relative_stddev, Rng* rng);

/// Replaces the features of a uniformly chosen `fraction` of samples with
/// pure Gaussian noise matched to each column's mean and standard
/// deviation (labels kept). This is the "noisy data" corruption of the
/// data-valuation literature (Ghorbani & Zou 2019): the sample carries no
/// usable signal but is distributionally inconspicuous. Returns the
/// number of corrupted samples.
int ReplaceFeaturesWithNoise(Dataset* data, double fraction, Rng* rng);

/// Reassigns the label of a uniformly chosen `fraction` of samples to a
/// different class drawn uniformly (Fig. 7: 30% flips). Returns the number
/// of flipped labels.
int FlipLabels(Dataset* data, double fraction, Rng* rng);

}  // namespace comfedsv

#endif  // COMFEDSV_DATA_NOISE_H_
