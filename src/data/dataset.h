// In-memory supervised dataset: a dense feature matrix plus integer class
// labels. All experiment workloads (synthetic and simulated-image) produce
// Datasets; the FL simulator and models consume them.
#ifndef COMFEDSV_DATA_DATASET_H_
#define COMFEDSV_DATA_DATASET_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace comfedsv {

/// A labelled classification dataset. Rows of `features` are samples.
class Dataset {
 public:
  Dataset() : num_classes_(0) {}

  /// Takes ownership of features/labels. `labels.size()` must equal
  /// `features.rows()` and every label must lie in [0, num_classes).
  Dataset(Matrix features, std::vector<int> labels, int num_classes);

  size_t num_samples() const { return labels_.size(); }
  size_t dim() const { return features_.cols(); }
  int num_classes() const { return num_classes_; }
  bool empty() const { return labels_.empty(); }

  const Matrix& features() const { return features_; }
  Matrix& mutable_features() { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  std::vector<int>& mutable_labels() { return labels_; }

  /// Feature row of sample `i`.
  const double* sample(size_t i) const { return features_.RowPtr(i); }
  int label(size_t i) const { return labels_[i]; }

  /// The sub-dataset given by `indices` (row indices, may repeat).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Splits off a uniformly random fraction into a second dataset
  /// (e.g. a held-out test split). `fraction` in [0, 1] is the share that
  /// goes to the *second* returned dataset.
  std::pair<Dataset, Dataset> RandomSplit(double fraction, Rng* rng) const;

  /// Concatenates datasets with identical dim/num_classes.
  static Dataset Concat(const std::vector<const Dataset*>& parts);

  /// Per-class sample counts (length num_classes).
  std::vector<int> ClassHistogram() const;

 private:
  Matrix features_;
  std::vector<int> labels_;
  int num_classes_;
};

}  // namespace comfedsv

#endif  // COMFEDSV_DATA_DATASET_H_
