// Simulated stand-ins for the paper's image benchmarks.
//
// The real MNIST / FashionMNIST / CIFAR10 files are not available in this
// offline environment, so we synthesize datasets that preserve every
// property the paper's experiments depend on:
//   * 10 balanced classes,
//   * class structure that a linear model / MLP / CNN can learn,
//   * partitionability by label for the non-IID splits,
//   * class-conditional sample similarity, which drives the low-rank
//     structure of the utility matrix (Sec. VI-A).
//
// Each family draws per-class prototype vectors and adds noise; the three
// families differ in dimension, noise level, and structure so they mimic
// the difficulty ordering MNIST < FashionMNIST < CIFAR10:
//   * kMnist:        well-separated prototypes, isotropic noise;
//   * kFashionMnist: closer prototypes (pairs of confusable classes);
//   * kCifar10:      3-channel layout, strong shared "background" factors
//                    plus higher noise, the hardest of the three.
// See DESIGN.md §"Substitutions" for the full rationale.
#ifndef COMFEDSV_DATA_IMAGE_SIM_H_
#define COMFEDSV_DATA_IMAGE_SIM_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace comfedsv {

/// Which benchmark the simulated dataset stands in for.
enum class ImageFamily { kMnist, kFashionMnist, kCifar10 };

/// Human-readable family name ("mnist-sim", ...).
std::string ImageFamilyName(ImageFamily family);

/// Configuration for the simulated image generator.
struct SimulatedImageConfig {
  ImageFamily family = ImageFamily::kMnist;
  int num_samples = 2000;
  /// Side length of the simulated (square) image. Default 8 gives
  /// 64 features for MNIST-like data and 192 for CIFAR-like (3 channels),
  /// a faithful-but-cheap scale for the experiments.
  int image_side = 8;
  int num_classes = 10;
  uint64_t seed = 0;
};

/// Number of feature dimensions the config will produce.
int SimulatedImageDim(const SimulatedImageConfig& config);

/// Generates a class-balanced simulated image dataset.
Dataset GenerateSimulatedImages(const SimulatedImageConfig& config);

}  // namespace comfedsv

#endif  // COMFEDSV_DATA_IMAGE_SIM_H_
