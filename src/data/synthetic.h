// Synthetic federated classification data following the recipe of
// Li et al., "Federated Optimization in Heterogeneous Networks" (FedProx),
// which the paper cites as its synthetic-data setup (Sec. VII-A):
//
//   per client k:   u_k ~ N(0, alpha),  B_k ~ N(0, beta)
//   local model:    W_k[i,j] ~ N(u_k, 1),  b_k[j] ~ N(u_k, 1)
//   local features: v_k[j] ~ N(B_k, 1),  x ~ N(v_k, Sigma),
//                   Sigma = diag(j^{-1.2})
//   labels:         y = argmax softmax(W_k^T x + b_k)
//
// alpha controls how much local models differ; beta controls how much local
// data distributions differ. alpha = beta = 0 with a shared (W, b, v) is
// the paper's IID setting; alpha = beta = 1 is its non-IID setting.
#ifndef COMFEDSV_DATA_SYNTHETIC_H_
#define COMFEDSV_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace comfedsv {

/// Configuration for the FedProx-style synthetic generator.
struct SyntheticConfig {
  int num_clients = 10;
  int samples_per_client = 200;
  int dim = 60;
  int num_classes = 10;
  /// Model-heterogeneity knob (paper: 0 for IID, 1 for non-IID).
  double alpha = 1.0;
  /// Data-heterogeneity knob (paper: 0 for IID, 1 for non-IID).
  double beta = 1.0;
  /// When true, all clients share one (W, b, v): the paper's IID setting.
  bool iid = false;
  uint64_t seed = 0;
};

/// Generates one dataset per client.
std::vector<Dataset> GenerateSyntheticFederated(const SyntheticConfig& config);

}  // namespace comfedsv

#endif  // COMFEDSV_DATA_SYNTHETIC_H_
