#include "data/noise.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace comfedsv {
namespace {

std::vector<int> ChooseFraction(size_t n, double fraction, Rng* rng) {
  COMFEDSV_CHECK_GE(fraction, 0.0);
  COMFEDSV_CHECK_LE(fraction, 1.0);
  const int count = static_cast<int>(fraction * static_cast<double>(n));
  return rng->SampleWithoutReplacement(static_cast<int>(n), count);
}

}  // namespace

int AddGaussianFeatureNoise(Dataset* data, double fraction, double stddev,
                            Rng* rng) {
  COMFEDSV_CHECK(data != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  COMFEDSV_CHECK_GE(stddev, 0.0);
  const std::vector<int> victims =
      ChooseFraction(data->num_samples(), fraction, rng);
  Matrix& feats = data->mutable_features();
  for (int row : victims) {
    double* p = feats.RowPtr(row);
    for (size_t j = 0; j < data->dim(); ++j) {
      p[j] += rng->NextGaussian(0.0, stddev);
    }
  }
  return static_cast<int>(victims.size());
}

int AddRelativeGaussianFeatureNoise(Dataset* data, double fraction,
                                    double relative_stddev, Rng* rng) {
  COMFEDSV_CHECK(data != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  COMFEDSV_CHECK_GE(relative_stddev, 0.0);
  if (data->empty()) return 0;
  // Per-column empirical standard deviation.
  const size_t dim = data->dim();
  const size_t n = data->num_samples();
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data->sample(i);
    for (size_t j = 0; j < dim; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < dim; ++j) mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data->sample(i);
    for (size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  std::vector<double> stddev(dim);
  for (size_t j = 0; j < dim; ++j) {
    stddev[j] = relative_stddev * std::sqrt(var[j] / static_cast<double>(n));
  }

  const std::vector<int> victims =
      ChooseFraction(n, fraction, rng);
  Matrix& feats = data->mutable_features();
  for (int row : victims) {
    double* p = feats.RowPtr(row);
    for (size_t j = 0; j < dim; ++j) {
      p[j] += rng->NextGaussian(0.0, stddev[j]);
    }
  }
  return static_cast<int>(victims.size());
}

int ReplaceFeaturesWithNoise(Dataset* data, double fraction, Rng* rng) {
  COMFEDSV_CHECK(data != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  if (data->empty()) return 0;
  const size_t dim = data->dim();
  const size_t n = data->num_samples();
  std::vector<double> mean(dim, 0.0), stddev(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data->sample(i);
    for (size_t j = 0; j < dim; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < dim; ++j) mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data->sample(i);
    for (size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean[j];
      stddev[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    stddev[j] = std::sqrt(stddev[j] / static_cast<double>(n));
  }

  const std::vector<int> victims = ChooseFraction(n, fraction, rng);
  Matrix& feats = data->mutable_features();
  for (int row : victims) {
    double* p = feats.RowPtr(row);
    for (size_t j = 0; j < dim; ++j) {
      p[j] = mean[j] + stddev[j] * rng->NextGaussian();
    }
  }
  return static_cast<int>(victims.size());
}

int FlipLabels(Dataset* data, double fraction, Rng* rng) {
  COMFEDSV_CHECK(data != nullptr);
  COMFEDSV_CHECK(rng != nullptr);
  COMFEDSV_CHECK_GT(data->num_classes(), 1);
  const std::vector<int> victims =
      ChooseFraction(data->num_samples(), fraction, rng);
  std::vector<int>& labels = data->mutable_labels();
  for (int row : victims) {
    // Draw from the other classes uniformly.
    int offset = rng->NextInt(1, data->num_classes() - 1);
    labels[row] = (labels[row] + offset) % data->num_classes();
  }
  return static_cast<int>(victims.size());
}

}  // namespace comfedsv
