#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace comfedsv {
namespace {

// Samples a (dim x classes) weight matrix and a classes-length bias with
// entries ~ N(mean, 1).
void SampleLinearModel(int dim, int classes, double mean, Rng* rng,
                       Matrix* weights, Vector* bias) {
  *weights = Matrix(dim, classes);
  *bias = Vector(classes);
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < classes; ++j) {
      (*weights)(i, j) = rng->NextGaussian(mean, 1.0);
    }
  }
  for (int j = 0; j < classes; ++j) (*bias)[j] = rng->NextGaussian(mean, 1.0);
}

int ArgmaxLogit(const Matrix& weights, const Vector& bias, const Vector& x) {
  int best = 0;
  double best_score = -1e300;
  for (size_t j = 0; j < bias.size(); ++j) {
    double score = bias[j];
    for (size_t i = 0; i < x.size(); ++i) score += weights(i, j) * x[i];
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

std::vector<Dataset> GenerateSyntheticFederated(
    const SyntheticConfig& config) {
  COMFEDSV_CHECK_GT(config.num_clients, 0);
  COMFEDSV_CHECK_GT(config.samples_per_client, 0);
  COMFEDSV_CHECK_GT(config.dim, 0);
  COMFEDSV_CHECK_GT(config.num_classes, 1);
  COMFEDSV_CHECK_GE(config.alpha, 0.0);
  COMFEDSV_CHECK_GE(config.beta, 0.0);

  Rng root(config.seed);
  // Diagonal feature covariance Sigma_jj = (j+1)^{-1.2}.
  Vector sigma(config.dim);
  for (int j = 0; j < config.dim; ++j) {
    sigma[j] = std::pow(static_cast<double>(j + 1), -1.2);
  }

  // Shared model/feature centre used in the IID setting.
  Matrix shared_weights;
  Vector shared_bias;
  Vector shared_v(config.dim);
  if (config.iid) {
    Rng shared_rng = root.Split(0xC0FFEE);
    SampleLinearModel(config.dim, config.num_classes, /*mean=*/0.0,
                      &shared_rng, &shared_weights, &shared_bias);
    for (int j = 0; j < config.dim; ++j) {
      shared_v[j] = shared_rng.NextGaussian();
    }
  }

  std::vector<Dataset> out;
  out.reserve(config.num_clients);
  for (int k = 0; k < config.num_clients; ++k) {
    Rng rng = root.Split(static_cast<uint64_t>(k) + 1);
    Matrix weights;
    Vector bias;
    Vector centre(config.dim);
    if (config.iid) {
      weights = shared_weights;
      bias = shared_bias;
      centre = shared_v;
    } else {
      const double u_k = rng.NextGaussian(0.0, std::sqrt(config.alpha));
      const double b_k = rng.NextGaussian(0.0, std::sqrt(config.beta));
      SampleLinearModel(config.dim, config.num_classes, u_k, &rng, &weights,
                        &bias);
      for (int j = 0; j < config.dim; ++j) {
        centre[j] = rng.NextGaussian(b_k, 1.0);
      }
    }

    Matrix feats(config.samples_per_client, config.dim);
    std::vector<int> labels(config.samples_per_client);
    Vector x(config.dim);
    for (int s = 0; s < config.samples_per_client; ++s) {
      for (int j = 0; j < config.dim; ++j) {
        x[j] = rng.NextGaussian(centre[j], std::sqrt(sigma[j]));
        feats(s, j) = x[j];
      }
      labels[s] = ArgmaxLogit(weights, bias, x);
    }
    out.emplace_back(std::move(feats), std::move(labels),
                     config.num_classes);
  }
  return out;
}

}  // namespace comfedsv
